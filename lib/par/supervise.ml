(* Supervision layer over the Domain worker pool: per-job wall-clock
   deadlines, bounded retry with exponential backoff, quarantine of
   jobs that exhaust their retries, and graceful completion — the sweep
   always drains, and every job ends in exactly one outcome.

   The mechanics, in one paragraph: jobs are handed out through one
   atomic counter exactly as in Pool; each worker advertises the job it
   is on (index, attempt, start time) in a state record shared under
   one mutex; when a deadline or a stop predicate is armed, the calling
   domain becomes a monitor that polls those records, commits
   [Timed_out] for overdue jobs (first committer wins — if the hung
   attempt later returns, its value is dropped), marks the worker
   abandoned and spawns a replacement so the sweep keeps draining.  An
   abandoned domain cannot be cancelled (OCaml domains are not
   killable), so it is never joined: it parks until the process exits,
   or, if its job eventually returns, notices it was abandoned and
   terminates itself.  Determinism: for a run in which no deadline
   fires, the outcome array is a pure function of the job function —
   byte-identical for every [jobs], including 1. *)

type policy = {
  sv_deadline : float option;
  sv_retries : int;
  sv_backoff : float;
  sv_max_respawns : int;
  sv_poll : float;
}

let default_policy =
  {
    sv_deadline = None;
    sv_retries = 0;
    sv_backoff = 0.05;
    sv_max_respawns = 32;
    sv_poll = 0.02;
  }

let policy ?deadline ?(retries = 0) ?(backoff = 0.05) ?(max_respawns = 32)
    ?(poll = 0.02) () =
  if retries < 0 then invalid_arg "Supervise.policy: negative retries";
  (match deadline with
  | Some d when d <= 0. -> invalid_arg "Supervise.policy: non-positive deadline"
  | _ -> ());
  if backoff < 0. then invalid_arg "Supervise.policy: negative backoff";
  if poll <= 0. then invalid_arg "Supervise.policy: non-positive poll";
  {
    sv_deadline = deadline;
    sv_retries = retries;
    sv_backoff = backoff;
    sv_max_respawns = max_respawns;
    sv_poll = poll;
  }

type 'a outcome =
  | Ok of 'a
  | Crashed of { error : string; attempts : int }
  | Timed_out of { deadline : float; attempts : int }
  | Quarantined of { error : string; attempts : int }

let outcome_class = function
  | Ok _ -> "ok"
  | Crashed _ -> "crashed"
  | Timed_out _ -> "timed-out"
  | Quarantined _ -> "quarantined"

(* Deterministic by construction: the deadline comes from the policy,
   never from a measured elapsed time, so failure summaries built from
   these strings satisfy the j1 ≡ jN byte-identity contract whenever
   the underlying outcomes match. *)
let describe = function
  | Ok _ -> "ok"
  | Crashed { error; attempts = _ } -> "crashed: " ^ error
  | Timed_out { deadline; attempts } ->
      if attempts = 0 then
        Printf.sprintf "timed out before starting (deadline %gs, all workers hung)"
          deadline
      else Printf.sprintf "timed out (deadline %gs, attempt %d)" deadline attempts
  | Quarantined { error; attempts } ->
      Printf.sprintf "quarantined after %d attempt(s): %s" attempts error

let casualties outcomes =
  let acc = ref [] in
  Array.iteri
    (fun i o -> match o with Ok _ -> () | o -> acc := (i, describe o) :: !acc)
    outcomes;
  List.rev !acc

exception Interrupted

let sleepf s =
  if s > 0. then
    try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()

type worker_state = {
  mutable ws_job : int;  (* index being attempted, -1 between jobs *)
  mutable ws_started : float;
  mutable ws_attempt : int;
  mutable ws_abandoned : bool;  (* monitor gave up on this domain *)
  mutable ws_exited : bool;  (* worker loop ran to completion *)
}

let run (type a) ?(policy = default_policy) ?jobs ?on_progress ?on_result
    ?skip ?should_stop n (f : int -> a) : a outcome array =
  if n < 0 then invalid_arg "Supervise.run: negative job count";
  if n = 0 then [||]
  else begin
    let p = policy in
    let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
    let workers = min (max 1 jobs) n in
    let results : a outcome option array = Array.make n None in
    let m = Mutex.create () in
    let committed = ref 0 in
    (* User hooks run under the commit mutex (so they see a consistent
       done-count and are serialized across domains).  A hook that
       raises must not kill a worker domain mid-sweep: the first error
       is remembered, later hook calls are suppressed, and the error
       re-raises in the calling domain once the sweep has drained. *)
    let hook_error = ref None in
    let call_hooks i o =
      if !hook_error = None then
        try
          (match on_result with None -> () | Some h -> h i o);
          match on_progress with
          | None -> ()
          | Some h -> h ~done_:!committed ~total:n
        with e -> hook_error := Some e
    in
    (* Exactly one outcome per slot; first committer wins.  The losing
       race is a worker settling a job the monitor already ruled
       [Timed_out] — its value is dropped. *)
    let commit_locked i o =
      match results.(i) with
      | Some _ -> ()
      | None ->
          results.(i) <- Some o;
          incr committed;
          call_hooks i o
    in
    let commit i o =
      Mutex.lock m;
      commit_locked i o;
      Mutex.unlock m
    in
    (* Pre-commit already-completed jobs (sweep-checkpoint resume)
       before any worker exists: Domain.spawn publishes these writes to
       every worker, so the unlocked [results.(i)] peek below is safe
       for them. *)
    (match skip with
    | None -> ()
    | Some sk ->
        for i = 0 to n - 1 do
          match sk i with Some v -> commit i (Ok v) | None -> ()
        done);
    let next = Atomic.make 0 in
    let worker ws () =
      let rec loop () =
        let abandoned =
          Mutex.lock m;
          let a = ws.ws_abandoned in
          Mutex.unlock m;
          a
        in
        if abandoned then finish ()
        else begin
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then finish ()
          else begin
            let already =
              Mutex.lock m;
              let a = results.(i) <> None in
              Mutex.unlock m;
              a
            in
            if not already then attempt i 1;
            loop ()
          end
        end
      and attempt i k =
        Mutex.lock m;
        ws.ws_job <- i;
        ws.ws_attempt <- k;
        ws.ws_started <- Unix.gettimeofday ();
        Mutex.unlock m;
        let settle o =
          Mutex.lock m;
          ws.ws_job <- -1;
          commit_locked i o;
          Mutex.unlock m
        in
        match f i with
        | v -> settle (Ok v)
        | exception e ->
            let error = Printexc.to_string e in
            if k <= p.sv_retries then begin
              (* Possibly transient: back off and retry — unless the
                 monitor already ruled on this job (a slow crash can
                 race its own deadline). *)
              Mutex.lock m;
              ws.ws_job <- -1;
              let ruled = results.(i) <> None || ws.ws_abandoned in
              Mutex.unlock m;
              if not ruled then begin
                sleepf (p.sv_backoff *. (2. ** float_of_int (k - 1)));
                attempt i (k + 1)
              end
            end
            else
              settle
                (if p.sv_retries = 0 then Crashed { error; attempts = k }
                 else Quarantined { error; attempts = k })
      and finish () =
        Mutex.lock m;
        ws.ws_exited <- true;
        Mutex.unlock m
      in
      loop ()
    in
    let new_state () =
      {
        ws_job = -1;
        ws_started = 0.;
        ws_attempt = 0;
        ws_abandoned = false;
        ws_exited = false;
      }
    in
    let need_monitor = p.sv_deadline <> None || should_stop <> None in
    if workers <= 1 && not need_monitor then
      (* Inline: retries, hooks and skip without any domain machinery —
         and exactly the byte-identity baseline the parallel path must
         reproduce. *)
      worker (new_state ()) ()
    else begin
      let states = ref [] in
      let domains = ref [] in
      let spawn_one () =
        let ws = new_state () in
        let d = Domain.spawn (worker ws) in
        Mutex.lock m;
        states := ws :: !states;
        Mutex.unlock m;
        domains := (ws, d) :: !domains
      in
      (* Initial crew.  If a spawn fails partway (domain limit), the
         sweep degrades to however many workers came up instead of
         aborting; zero workers is a real error. *)
      let spawn_failed = ref None in
      for _ = 1 to workers do
        match spawn_one () with () -> () | exception e -> spawn_failed := Some e
      done;
      (match (!domains, !spawn_failed) with
      | [], Some e -> raise e
      | [], None -> assert false (* workers >= 1 *)
      | _ -> ());
      let monitor_exn = ref None in
      if need_monitor then begin
        let stop_requested () =
          match should_stop with None -> false | Some f -> f ()
        in
        let respawns = ref 0 in
        let live_locked () =
          List.exists (fun ws -> (not ws.ws_abandoned) && not ws.ws_exited) !states
        in
        let rec watch () =
          Mutex.lock m;
          let now = Unix.gettimeofday () in
          let to_replace = ref 0 in
          (match p.sv_deadline with
          | None -> ()
          | Some d ->
              List.iter
                (fun ws ->
                  if
                    (not ws.ws_abandoned) && ws.ws_job >= 0
                    && now -. ws.ws_started > d
                  then begin
                    commit_locked ws.ws_job
                      (Timed_out { deadline = d; attempts = ws.ws_attempt });
                    ws.ws_abandoned <- true;
                    incr to_replace
                  end)
                !states);
          let done_ = !committed in
          Mutex.unlock m;
          (* Replace abandoned workers so the sweep keeps draining.  A
             replacement that cannot be spawned (domain limit) is
             dropped; the starvation sweep below guarantees termination
             even with zero live workers. *)
          for _ = 1 to !to_replace do
            if !respawns < p.sv_max_respawns then begin
              incr respawns;
              try spawn_one () with _ -> ()
            end
          done;
          if done_ >= n then ()
          else if stop_requested () then raise Interrupted
          else begin
            let live =
              Mutex.lock m;
              let l = live_locked () in
              Mutex.unlock m;
              l
            in
            if not live then begin
              (* Every worker is hung-and-abandoned and no replacement
                 could be spawned: jobs never handed out would wait
                 forever.  Drain the counter and mark them (attempt 0 =
                 never started) so the sweep completes with a truthful
                 report instead of deadlocking. *)
              let d = Option.value p.sv_deadline ~default:0. in
              let rec drain () =
                let i = Atomic.fetch_and_add next 1 in
                if i < n then begin
                  commit i (Timed_out { deadline = d; attempts = 0 });
                  drain ()
                end
              in
              drain ();
              let done_ =
                Mutex.lock m;
                let c = !committed in
                Mutex.unlock m;
                c
              in
              if done_ >= n then ()
              else begin
                sleepf p.sv_poll;
                watch ()
              end
            end
            else begin
              sleepf p.sv_poll;
              watch ()
            end
          end
        in
        match watch () with
        | () -> ()
        | exception e -> monitor_exn := Some e
      end;
      (match !monitor_exn with
      | Some e ->
          (* Interrupted (or a monitor bug): abandon the whole crew —
             workers may be hung, so joining could block forever.  The
             caller is expected to flush checkpoints and exit; process
             exit reaps the domains. *)
          raise e
      | None -> ());
      (* Normal completion: every job committed.  Join only the workers
         that were never abandoned — those are between jobs (or about
         to notice the exhausted counter) and terminate promptly.
         Abandoned domains are leaked by design; see the module
         comment. *)
      List.iter (fun (ws, d) -> if not ws.ws_abandoned then Domain.join d)
        !domains
    end;
    (match !hook_error with Some e -> raise e | None -> ());
    Mutex.lock m;
    let out =
      Array.map
        (function Some o -> o | None -> assert false (* all committed *))
        results
    in
    Mutex.unlock m;
    out
  end

let progress_line ?(min_interval = 0.25) ~label () =
  let tty = try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false in
  if not tty then fun ~done_:_ ~total:_ -> ()
  else begin
    let last = ref neg_infinity in
    fun ~done_ ~total ->
      let now = Unix.gettimeofday () in
      if done_ >= total || now -. !last >= min_interval then begin
        last := now;
        Printf.eprintf "\r%s: %d/%d jobs done%s%!" label done_ total
          (if done_ >= total then "\n" else "")
      end
  end
