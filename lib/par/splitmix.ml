type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

(* The murmur-style finalizer of Steele, Lea & Flood's splitmix64. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let derive ~root ~index =
  (* Jump directly to substream [index]: mix the root first so that
     roots differing in one bit do not produce overlapping gamma walks,
     then step [index] gammas and mix again. *)
  {
    state =
      mix64
        (Int64.add (mix64 (Int64.of_int root))
           (Int64.mul (Int64.of_int index) golden));
  }

let next64 t =
  t.state <- Int64.add t.state golden;
  mix64 t.state

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let next_in t bound =
  if bound <= 0 then invalid_arg "Splitmix.next_in: bound must be positive";
  next t mod bound
