(** Consolidated SIGINT/SIGTERM handling for every long-running leg —
    supervised sweeps, soak runs, the procpool scheduler, and the serve
    daemon — replacing the per-caller handler installs that used to be
    duplicated across them.

    Contract ("flush semantics"): the handler itself only counts the
    signal into an atomic — it never writes files, kills workers, or
    exits, because none of those are async-signal-safe things to do to
    in-flight state.  The long-running loop is responsible for polling
    {!requested} at its natural cadence (the supervisor polls it every
    scheduler iteration, ≤ its [sv_poll]) and then performing an
    orderly stop from {e straight-line code}: flush sweep checkpoints
    or the request journal, reap workers, and exit.  Conventions
    layered on the count:

    - {b first} signal ({!requested}): graceful — stop admitting new
      work, finish or checkpoint what is in flight, flush, exit
      (sweeps exit 130; the daemon drains and exits 0).
    - {b second} signal ({!hard_requested}): impatient — abandon
      in-flight work (procpool workers are SIGKILLed and reaped, the
      journal keeps the jobs for the next run) and exit 130.

    Installation is idempotent and narrow: only SIGINT and SIGTERM are
    touched, and procpool worker children undo it with
    {!restore_defaults} right after the fork so a signal aimed at a
    child kills the child, not sets the parent's flag. *)

val install : unit -> unit
(** Install the counting handler for SIGINT and SIGTERM (idempotent;
    signals that cannot be trapped are skipped silently). *)

val requested : unit -> bool
(** At least one SIGINT/SIGTERM has arrived since {!reset}. *)

val hard_requested : unit -> bool
(** At least two have arrived: the user is past waiting for a drain. *)

val count : unit -> int
(** Exact number of signals received since {!reset}. *)

val reset : unit -> unit
(** Zero the counter (handlers stay installed).  For tests. *)

val restore_defaults : unit -> unit
(** Reset SIGINT, SIGTERM and SIGPIPE to [Signal_default] — what a
    freshly forked worker child must do before running jobs. *)
