(** Process-isolated sweep workers.

    Each worker is a forked child process speaking a length-prefixed,
    CRC-checked binary job/result protocol over a pair of pipes (the
    [Busgen_binio.Io] codecs — the same bytes-on-the-wire discipline as
    the checkpoint files).  Compared to the Domain pool this buys three
    robustness properties domains cannot provide:

    - {b true cancellation} — an overdue job's worker is SIGKILLed and
      reaped via [waitpid], then replaced; no zombies, no abandoned
      computations;
    - {b crash containment} — a worker dying to SIGSEGV, the OOM
      killer, or any uncaught signal surfaces as that one job's failure
      (with the signal name) while the sweep drains normally;
    - {b resource limits} — per-worker [rlimit] on CPU seconds and
      address space, plus recycling after N jobs to bound memory
      growth.

    This module is the {e mechanics} layer only: spawning, framing,
    killing, reaping, recycling bookkeeping.  Scheduling — deadlines,
    retry, quarantine, result ordering — lives in {!Supervise}, which
    drives either backend through the same policy.

    Fork safety: spawn workers only from a process with no live domains
    (the supervisor's process backend never creates any).  Jobs run in
    the child, so they see a copy-on-write snapshot of the parent's
    state at spawn time and mutations never flow back: results travel
    only through the encoded reply. *)

(** {1 Configuration} *)

type limits = {
  li_cpu_seconds : int option;
      (** [RLIMIT_CPU] for the worker, in seconds; the kernel delivers
          SIGXCPU at the limit. *)
  li_mem_bytes : int option;
      (** [RLIMIT_AS] for the worker, in bytes; allocations beyond it
          fail (typically surfacing as [Out_of_memory]). *)
}

val no_limits : limits

type config = {
  pc_limits : limits;
  pc_recycle_after : int option;
      (** Replace a worker after this many completed jobs, bounding
          memory growth in long sweeps.  [None] = never recycle. *)
}

val config :
  ?cpu_seconds:int -> ?mem_bytes:int -> ?recycle_after:int -> unit -> config
(** All values must be positive; raises [Invalid_argument] otherwise. *)

val default_config : config
(** No rlimits, recycle after 256 jobs. *)

type 'a spec = {
  sp_config : config;
  sp_encode : 'a -> string;  (** Result serializer, runs in the child. *)
  sp_decode : string -> 'a;  (** Result parser, runs in the parent. *)
}
(** Everything the supervisor needs to run a ['a]-returning sweep over
    processes: results cross the process boundary as bytes, so the
    caller supplies the codec ([Busgen_binio.Io] is the natural
    vocabulary; it must be lossless for the [-j N] ≡ [-j 1]
    byte-identity contract to hold). *)

(** {1 Workers} *)

type worker

val pid : worker -> int
val jobs_done : worker -> int
val result_fd : worker -> Unix.file_descr
(** For [Unix.select] in the supervisor's event loop. *)

exception Closed
(** The peer's pipe end is gone: EOF or EPIPE.  In the parent this
    means the worker died. *)

exception Protocol of string
(** The stream is unusable: bad frame length, CRC mismatch, malformed
    reply, or a peer stalled mid-frame.  Treat the worker as crashed. *)

(** {1 Wire framing}

    One frame is an 8-byte LE payload length, the payload bytes, and an
    8-byte LE CRC-32 of the payload.  Exposed for the protocol tests
    (and any future framed-pipe reuse). *)

val write_frame : Unix.file_descr -> string -> unit
(** Raises {!Closed} when the read end is gone (EPIPE/EBADF). *)

val read_frame : ?patience:float -> Unix.file_descr -> string
(** Read one frame, blocking.  With [patience] set, a stream that
    stalls mid-frame for that many seconds raises {!Protocol} instead
    of blocking forever.  Raises {!Closed} on EOF, {!Protocol} on a
    corrupt length or CRC. *)

val spawn : limits:limits -> run:(int -> string) -> worker list -> worker
(** [spawn ~limits ~run others] forks a worker that applies [run] to
    each job index it receives and replies with the encoded result
    (or the exception text if [run] raises).  [others] must list every
    other live worker so the child can close their inherited pipe ends
    — a sibling holding a dead worker's write end would defeat EOF
    crash detection. *)

val send_job : worker -> int -> unit
(** Hand the worker a job index.  Raises {!Closed} if it died. *)

type reply = Ok_reply of int * string | Err_reply of int * string
(** [Ok_reply (index, encoded_result)] or
    [Err_reply (index, exception_text)]. *)

val read_reply : worker -> reply
(** Read one result frame.  Call only after [select] reports
    {!result_fd} readable.  Raises {!Closed} if the worker died,
    {!Protocol} if the stream is corrupt or stalled. *)

(** {1 Termination} *)

type death = Exited of int | Signaled of string

val kill : worker -> death
(** SIGKILL then reap ([waitpid], blocking — SIGKILL cannot be
    ignored).  True cancellation for a worker running an overdue job.
    Idempotent through {!reap}'s bookkeeping. *)

val shutdown : worker -> death
(** Polite stop for an {e idle} worker: send the shutdown frame and
    reap.  Must not be used on a worker running a job (it would block
    in [waitpid]); use {!kill} there. *)

val reap : worker -> death
(** Close the parent's pipe ends and [waitpid] the child.  Safe to call
    twice (the second call reports [Exited 0] without waiting). *)

(** {1 Accounting} *)

val forked_total : unit -> int
val reaped_total : unit -> int
(** Process-lifetime counters over all pools.  After any completed or
    interrupted sweep they are equal — the tests use this plus a
    [waitpid (-1)] ECHILD probe to prove the no-zombie property. *)

val signal_name : int -> string
(** Human name ("SIGKILL", "SIGXCPU", …) of an OCaml [Sys] signal
    number, for crash reports. *)
