module Io = Busgen_binio.Io

external set_rlimit_raw : int -> int -> bool = "busgen_par_setrlimit"

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type limits = {
  li_cpu_seconds : int option;
  li_mem_bytes : int option;
}

let no_limits = { li_cpu_seconds = None; li_mem_bytes = None }

type config = {
  pc_limits : limits;
  pc_recycle_after : int option;
}

let config ?cpu_seconds ?mem_bytes ?recycle_after () =
  let pos what = function
    | Some v when v <= 0 ->
        invalid_arg (Printf.sprintf "Procpool.config: %s must be positive" what)
    | v -> v
  in
  {
    pc_limits =
      {
        li_cpu_seconds = pos "cpu_seconds" cpu_seconds;
        li_mem_bytes = pos "mem_bytes" mem_bytes;
      };
    pc_recycle_after = pos "recycle_after" recycle_after;
  }

let default_config = config ~recycle_after:256 ()

type 'a spec = {
  sp_config : config;
  sp_encode : 'a -> string;
  sp_decode : string -> 'a;
}

(* ------------------------------------------------------------------ *)
(* Signal names                                                        *)
(* ------------------------------------------------------------------ *)

let signal_name n =
  (* OCaml signal numbers are its own negative encoding, not the OS
     numbers; compare against [Sys.sig*] rather than raw integers. *)
  if n = Sys.sigabrt then "SIGABRT"
  else if n = Sys.sigalrm then "SIGALRM"
  else if n = Sys.sigbus then "SIGBUS"
  else if n = Sys.sigfpe then "SIGFPE"
  else if n = Sys.sighup then "SIGHUP"
  else if n = Sys.sigill then "SIGILL"
  else if n = Sys.sigint then "SIGINT"
  else if n = Sys.sigkill then "SIGKILL"
  else if n = Sys.sigpipe then "SIGPIPE"
  else if n = Sys.sigquit then "SIGQUIT"
  else if n = Sys.sigsegv then "SIGSEGV"
  else if n = Sys.sigterm then "SIGTERM"
  else if n = Sys.sigusr1 then "SIGUSR1"
  else if n = Sys.sigusr2 then "SIGUSR2"
  else if n = Sys.sigxcpu then "SIGXCPU"
  else if n = Sys.sigxfsz then "SIGXFSZ"
  else Printf.sprintf "signal %d" n

(* ------------------------------------------------------------------ *)
(* Framed pipe protocol                                                *)
(* ------------------------------------------------------------------ *)

exception Closed
exception Protocol of string

(* A frame is: 8-byte LE payload length | payload | 8-byte LE CRC-32 of
   the payload.  Payloads are [Busgen_binio.Io] encodings.  A child that
   dies mid-frame closes its pipe end, so the parent sees EOF ([Closed])
   after at most the bytes already buffered; a frame whose CRC or length
   does not check out means the worker is unusable ([Protocol]). *)

let max_frame = 1 lsl 26
(* 64 MB.  No legitimate sweep result approaches this; a larger length
   prefix is a corrupted stream, not a big result. *)

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

(* How long the parent will wait for the remainder of a frame whose
   first byte has arrived.  Our own children write frames in one
   [write_all]; only a child stopped (SIGSTOP) mid-write can stall the
   stream, and without this bound that would wedge the supervisor with
   deadlines unenforceable.  Children read with no patience: an idle
   worker legitimately blocks forever waiting for its next job. *)
let frame_patience = 60.0

let read_exact ?patience fd n =
  let b = Bytes.create n in
  let rec chunk pos =
    if pos < n then begin
      (match patience with
      | None -> ()
      | Some p -> (
          match Unix.select [ fd ] [] [] p with
          | [], _, _ -> raise (Protocol "peer stalled mid-frame")
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()));
      let k =
        try Unix.read fd b pos (n - pos)
        with Unix.Unix_error (Unix.EINTR, _, _) -> -1
      in
      if k = 0 then raise Closed;
      chunk (if k < 0 then pos else pos + k)
    end
  in
  chunk 0;
  Bytes.unsafe_to_string b

let int_bytes v =
  let w = Io.writer () in
  Io.w_int w v;
  Io.contents w

let write_frame fd payload =
  let b = Buffer.create (String.length payload + 16) in
  Buffer.add_string b (int_bytes (String.length payload));
  Buffer.add_string b payload;
  Buffer.add_string b (int_bytes (Io.crc32 payload));
  let s = Buffer.to_bytes b in
  try write_all fd s 0 (Bytes.length s)
  with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> raise Closed

let read_frame ?patience fd =
  let len = Io.r_int (Io.reader (read_exact ?patience fd 8)) in
  if len < 0 || len > max_frame then
    raise (Protocol (Printf.sprintf "bad frame length %d" len));
  let payload = read_exact ?patience fd len in
  let crc = Io.r_int (Io.reader (read_exact ?patience fd 8)) in
  if crc <> Io.crc32 payload then raise (Protocol "frame CRC mismatch");
  payload

(* Parent -> child payloads: tag 0 = job (index), tag 1 = shutdown.
   Child -> parent payloads: tag 0 = ok (index, result bytes),
   tag 1 = error (index, exception text). *)

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

type worker = {
  w_pid : int;
  w_job_w : Unix.file_descr;
  w_res_r : Unix.file_descr;
  mutable w_jobs_done : int;
  mutable w_reaped : bool;
}

type death = Exited of int | Signaled of string

(* Fork/reap accounting, exposed so tests can prove the no-zombie
   property: after any pool run, forked_total = reaped_total and
   waitpid(-1) raises ECHILD. *)
let forked_count = Atomic.make 0
let reaped_count = Atomic.make 0
let forked_total () = Atomic.get forked_count
let reaped_total () = Atomic.get reaped_count

let pid w = w.w_pid
let result_fd w = w.w_res_r
let jobs_done w = w.w_jobs_done

let apply_limits l =
  (match l.li_cpu_seconds with
  | None -> ()
  | Some s -> ignore (set_rlimit_raw 0 s));
  match l.li_mem_bytes with
  | None -> ()
  | Some b -> ignore (set_rlimit_raw 1 b)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let child_loop ~job_r ~res_w ~run =
  let reply payload = write_frame res_w payload in
  let rec loop () =
    let r = Io.reader (read_frame job_r) in
    match Io.r_int r with
    | 0 ->
        let i = Io.r_int r in
        let w = Io.writer () in
        (match run i with
        | payload ->
            Io.w_int w 0;
            Io.w_int w i;
            Io.w_string w payload
        | exception e ->
            Io.w_int w 1;
            Io.w_int w i;
            Io.w_string w (Printexc.to_string e));
        reply (Io.contents w);
        loop ()
    | _ -> () (* shutdown *)
  in
  (try loop () with Closed | Protocol _ | Io.Corrupt _ -> () | _ -> ());
  (* [_exit], not [exit]: the child must not run the parent's [at_exit]
     hooks or flush a copy of the parent's buffered channels. *)
  Unix._exit 0

let spawn ~limits ~run others =
  let job_r, job_w = Unix.pipe ~cloexec:false () in
  let res_r, res_w = Unix.pipe ~cloexec:false () in
  (* Flush so the child cannot re-emit text buffered before the fork. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      close_quiet job_w;
      close_quiet res_r;
      (* Close the pipe ends of every sibling worker: a child holding a
         sibling's write end would keep that sibling's stream open past
         its death and break the parent's EOF-based crash detection. *)
      List.iter
        (fun o ->
          close_quiet o.w_job_w;
          close_quiet o.w_res_r)
        others;
      Intr.restore_defaults ();
      apply_limits limits;
      child_loop ~job_r ~res_w ~run
  | pid ->
      close_quiet job_r;
      close_quiet res_w;
      Atomic.incr forked_count;
      { w_pid = pid; w_job_w = job_w; w_res_r = res_r; w_jobs_done = 0; w_reaped = false }

let send_job w i =
  let wr = Io.writer () in
  Io.w_int wr 0;
  Io.w_int wr i;
  write_frame w.w_job_w (Io.contents wr)

type reply = Ok_reply of int * string | Err_reply of int * string

let read_reply w =
  let r = Io.reader (read_frame ~patience:frame_patience w.w_res_r) in
  match
    let tag = Io.r_int r in
    let i = Io.r_int r in
    let s = Io.r_string r in
    (tag, i, s)
  with
  | 0, i, s ->
      w.w_jobs_done <- w.w_jobs_done + 1;
      Ok_reply (i, s)
  | 1, i, s ->
      w.w_jobs_done <- w.w_jobs_done + 1;
      Err_reply (i, s)
  | tag, _, _ -> raise (Protocol (Printf.sprintf "bad reply tag %d" tag))
  | exception Io.Corrupt msg -> raise (Protocol ("bad reply: " ^ msg))

let rec waitpid_retry pid =
  try Unix.waitpid [] pid
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let reap w =
  close_quiet w.w_job_w;
  close_quiet w.w_res_r;
  if w.w_reaped then Exited 0
  else begin
    let _, status = waitpid_retry w.w_pid in
    w.w_reaped <- true;
    Atomic.incr reaped_count;
    match status with
    | Unix.WEXITED c -> Exited c
    | Unix.WSIGNALED s | Unix.WSTOPPED s -> Signaled (signal_name s)
  end

let kill w =
  (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
  reap w

let shutdown w =
  (* Polite stop for an *idle* worker: it is blocked reading the job
     pipe, so the tiny shutdown frame cannot block the parent and the
     child exits as soon as it reads it.  Never call this on a worker
     that is running a job — that is what [kill] is for. *)
  (try
     let wr = Io.writer () in
     Io.w_int wr 1;
     write_frame w.w_job_w (Io.contents wr)
   with Closed | Protocol _ | Unix.Unix_error _ -> ());
  reap w
