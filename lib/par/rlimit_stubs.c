/* setrlimit(2) bindings for process-pool worker children.
 *
 * The OCaml Unix library exposes getrlimit/setrlimit on no platform,
 * so the two limits the pool needs are bound here directly.  Called in
 * the forked child before it starts taking jobs; the OCaml side maps
 *   0 -> RLIMIT_CPU  (seconds of CPU time; SIGXCPU at the soft limit)
 *   1 -> RLIMIT_AS   (bytes of address space; allocations fail)
 * Both soft and hard limits are set so a child cannot raise them back.
 * For RLIMIT_CPU the hard limit sits a few seconds above the soft one:
 * Linux checks the hard limit first and sends SIGKILL there, so with
 * soft == hard the child would die to an anonymous SIGKILL instead of
 * the diagnosable SIGXCPU the soft limit delivers.
 */

#include <caml/mlvalues.h>

#ifdef _WIN32

/* No rlimits on Windows; report failure and let the pool run without
 * limits rather than refusing to work at all. */
CAMLprim value busgen_par_setrlimit(value which, value limit)
{
  (void)which;
  (void)limit;
  return Val_false;
}

#else

#include <sys/resource.h>

CAMLprim value busgen_par_setrlimit(value which, value limit)
{
  struct rlimit rl;
  int resource;

  switch (Int_val(which)) {
  case 0: resource = RLIMIT_CPU; break;
  case 1: resource = RLIMIT_AS; break;
  default: return Val_false;
  }

  rl.rlim_cur = (rlim_t)Long_val(limit);
  rl.rlim_max = (rlim_t)Long_val(limit);
  if (resource == RLIMIT_CPU)
    rl.rlim_max += 5; /* SIGKILL backstop if SIGXCPU is not fatal */
  return setrlimit(resource, &rl) == 0 ? Val_true : Val_false;
}

#endif
