(* See intr.mli for the contract.  The handler body is just an atomic
   increment: anything heavier (IO, kills, exits) belongs in the
   polling loop, which runs it from straight-line code where in-flight
   state is consistent. *)

let signals_seen = Atomic.make 0
let installed = Atomic.make false

let install () =
  if not (Atomic.exchange installed true) then begin
    let handle = Sys.Signal_handle (fun _ -> Atomic.incr signals_seen) in
    List.iter
      (fun s ->
        try Sys.set_signal s handle
        with Sys_error _ | Invalid_argument _ -> ())
      [ Sys.sigint; Sys.sigterm ]
  end

let count () = Atomic.get signals_seen
let requested () = count () > 0
let hard_requested () = count () > 1
let reset () = Atomic.set signals_seen 0

let restore_defaults () =
  List.iter
    (fun s -> try Sys.set_signal s Sys.Signal_default with _ -> ())
    [ Sys.sigint; Sys.sigterm; Sys.sigpipe ]
