(* Re-export: the JSON implementation lives in lib/json (busgen_json)
   so non-serve code (lib/explore) can use it without pulling in the
   daemon.  [include] preserves type equality with Busgen_json.Json. *)
include Busgen_json.Json
