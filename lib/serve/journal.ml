(* See journal.mli for the format and recovery contract. *)

module Io = Busgen_binio.Io

type t = {
  jn_dir : string;
  jn_path : string;
  mutable jn_fd : Unix.file_descr;
  mutable jn_bytes : int;
  mutable jn_appends : int;
  jn_log : string -> unit;
}

type record =
  | Accept of string * string
  | Done of string * string
  | Quarantine of string * string

type recovery = {
  rc_pending : (string * string) list;
  rc_seen : (string, unit) Hashtbl.t;
  rc_replies : (string * string) list;
  rc_done : int;
  rc_quarantined : int;
  rc_corrupt : int;
  rc_torn_bytes : int;
  rc_records : int;
}

let header = "BSJL1\n"
let file_name = "journal.bsjl"
let frame_overhead = 16 (* 8-byte length + 8-byte CRC *)

(* A record is an id plus a line/reason; anything bigger than this is
   not a record of ours, it is corruption — treat it as such rather
   than allocating pathological lengths. *)
let max_record_bytes = 64 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Record codec                                                        *)
(* ------------------------------------------------------------------ *)

let encode_record r =
  let w = Io.writer () in
  (match r with
  | Accept (id, line) ->
    Io.w_int w 1;
    Io.w_string w id;
    Io.w_string w line
  | Done (id, reply) ->
    Io.w_int w 2;
    Io.w_string w id;
    Io.w_string w reply
  | Quarantine (id, reason) ->
    Io.w_int w 3;
    Io.w_string w id;
    Io.w_string w reason);
  Io.contents w

let decode_record payload =
  let r = Io.reader payload in
  let tag = Io.r_int r in
  let id = Io.r_string r in
  let s = Io.r_string r in
  match tag with
  | 1 -> Accept (id, s)
  | 2 -> Done (id, s)
  | 3 -> Quarantine (id, s)
  | _ -> raise (Io.Corrupt "journal: unknown record tag")

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (n + frame_overhead) in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  Bytes.blit_string payload 0 b 8 n;
  Bytes.set_int64_le b (n + 8) (Int64.of_int (Io.crc32 payload));
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)
(* Scan                                                                *)
(* ------------------------------------------------------------------ *)

(* Walk the frames of [data] after the header.  Returns the records in
   order, the count of CRC-skipped records, and how many trailing
   bytes form a torn partial frame (0 if the file ends on a frame
   boundary).  A frame with an absurd length is indistinguishable from
   corruption of the length field itself; from that point on we cannot
   re-synchronize, so the remainder counts as torn tail. *)
let scan data =
  let len = String.length data in
  let records = ref [] in
  let corrupt = ref 0 in
  let pos = ref (String.length header) in
  let torn = ref 0 in
  (try
     while !pos < len do
       if len - !pos < frame_overhead then begin
         torn := len - !pos;
         raise Exit
       end;
       let n = Int64.to_int (String.get_int64_le data !pos) in
       if n < 0 || n > max_record_bytes || !pos + frame_overhead + n > len
       then begin
         torn := len - !pos;
         raise Exit
       end;
       let payload = String.sub data (!pos + 8) n in
       let stored = Int64.to_int (String.get_int64_le data (!pos + 8 + n)) in
       (if stored <> Io.crc32 payload then incr corrupt
        else
          match decode_record payload with
          | r -> records := r :: !records
          | exception Io.Corrupt _ -> incr corrupt);
       pos := !pos + frame_overhead + n
     done
   with Exit -> ());
  (List.rev !records, !corrupt, !torn)

let summarize records =
  let seen = Hashtbl.create 64 in
  let resolved = Hashtbl.create 64 in
  let done_n = ref 0 and quarantined = ref 0 in
  let replies = ref [] in
  List.iter
    (fun r ->
      match r with
      | Accept (id, _) -> Hashtbl.replace seen id ()
      | Done (id, reply) ->
        Hashtbl.replace seen id ();
        if not (Hashtbl.mem resolved id) then incr done_n;
        Hashtbl.replace resolved id ();
        if reply <> "" then replies := (id, reply) :: !replies
      | Quarantine (id, _) ->
        Hashtbl.replace seen id ();
        if not (Hashtbl.mem resolved id) then incr quarantined;
        Hashtbl.replace resolved id ())
    records;
  let pending =
    List.filter_map
      (function
        | Accept (id, line) when not (Hashtbl.mem resolved id) ->
          Some (id, line)
        | _ -> None)
      records
  in
  (pending, seen, List.rev !replies, !done_n, !quarantined)

(* ------------------------------------------------------------------ *)
(* Open / recovery                                                     *)
(* ------------------------------------------------------------------ *)

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let full_write fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let open_ ?(log = fun _ -> ()) ~dir () =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir file_name in
  let fresh () =
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    full_write fd header;
    (fd, String.length header, ([], Hashtbl.create 16, [], 0, 0), 0, 0, 0)
  in
  let fd, bytes, (pending, seen, replies, done_n, quar), corrupt, torn, nrec
      =
    if not (Sys.file_exists path) then fresh ()
    else begin
      let data = read_whole path in
      let hlen = String.length header in
      if String.length data < hlen || String.sub data 0 hlen <> header then begin
        (* Not our file: set it aside rather than append garbage to
           garbage or destroy what might be someone's data. *)
        let bad = path ^ ".bad" in
        log
          (Printf.sprintf "[journal] foreign or truncated header, moving to %s"
             bad);
        (try Sys.rename path bad with Sys_error _ -> ());
        fresh ()
      end
      else begin
        let records, corrupt, torn = scan data in
        let keep = String.length data - torn in
        if torn > 0 then
          log
            (Printf.sprintf "[journal] truncating %d torn byte(s) off the tail"
               torn);
        if corrupt > 0 then
          log
            (Printf.sprintf "[journal] skipped %d corrupt record(s)" corrupt);
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        if torn > 0 then Unix.ftruncate fd keep;
        ignore (Unix.lseek fd keep Unix.SEEK_SET);
        (fd, keep, summarize records, corrupt, torn, List.length records)
      end
    end
  in
  let t =
    {
      jn_dir = dir;
      jn_path = path;
      jn_fd = fd;
      jn_bytes = bytes;
      jn_appends = 0;
      jn_log = log;
    }
  in
  ( t,
    {
      rc_pending = pending;
      rc_seen = seen;
      rc_replies = replies;
      rc_done = done_n;
      rc_quarantined = quar;
      rc_corrupt = corrupt;
      rc_torn_bytes = torn;
      rc_records = nrec;
    } )

(* ------------------------------------------------------------------ *)
(* Append                                                              *)
(* ------------------------------------------------------------------ *)

let append t r =
  let f = frame (encode_record r) in
  full_write t.jn_fd f;
  t.jn_bytes <- t.jn_bytes + String.length f;
  t.jn_appends <- t.jn_appends + 1

let accept t ~id ~line = append t (Accept (id, line))
let done_ t ~id ~reply = append t (Done (id, reply))
let quarantine t ~id ~reason = append t (Quarantine (id, reason))
let sync t = try Unix.fsync t.jn_fd with Unix.Unix_error _ -> ()
let close t = try Unix.close t.jn_fd with Unix.Unix_error _ -> ()
let path t = t.jn_path
let size_bytes t = t.jn_bytes
let records_written t = t.jn_appends

(* ------------------------------------------------------------------ *)
(* Compaction                                                          *)
(* ------------------------------------------------------------------ *)

let compact t ~keep_done =
  let data = read_whole t.jn_path in
  let records, _corrupt, _torn = scan data in
  let resolved = Hashtbl.create 64 in
  List.iter
    (function
      | Done (id, _) | Quarantine (id, _) -> Hashtbl.replace resolved id ()
      | Accept _ -> ())
    records;
  (* Which Done records keep their reply text: the last [keep_done]. *)
  let total_done =
    List.fold_left
      (fun n -> function Done _ -> n + 1 | _ -> n)
      0 records
  in
  let kept =
    let seen_done = ref 0 in
    List.filter_map
      (fun r ->
        match r with
        | Accept (id, _) when Hashtbl.mem resolved id ->
          None (* resolved Accepts are implied by their Done/Quarantine *)
        | Accept _ -> Some r
        | Done (id, reply) ->
          incr seen_done;
          if !seen_done > total_done - keep_done then Some (Done (id, reply))
          else Some (Done (id, ""))
        | Quarantine _ -> Some r)
      records
  in
  let tmp = t.jn_path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  full_write fd header;
  List.iter (fun r -> full_write fd (frame (encode_record r))) kept;
  Unix.fsync fd;
  Unix.close fd;
  Sys.rename tmp t.jn_path;
  Unix.close t.jn_fd;
  let fd = Unix.openfile t.jn_path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  t.jn_fd <- fd;
  t.jn_bytes <- (Unix.fstat fd).Unix.st_size;
  t.jn_log
    (Printf.sprintf "[journal] compacted to %d record(s), %d byte(s)"
       (List.length kept) t.jn_bytes)

(* ------------------------------------------------------------------ *)
(* Offline scan                                                        *)
(* ------------------------------------------------------------------ *)

let read_all ~dir =
  let p = Filename.concat dir file_name in
  if not (Sys.file_exists p) then Error (Printf.sprintf "no journal at %s" p)
  else
    let data = read_whole p in
    let hlen = String.length header in
    if String.length data < hlen || String.sub data 0 hlen <> header then
      Error (Printf.sprintf "%s: not a BSJL1 journal" p)
    else begin
      let records, corrupt, torn = scan data in
      Ok (records, corrupt, torn)
    end
