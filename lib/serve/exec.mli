(** Deterministic job execution for the daemon.

    A job's reply is a pure function of its request: no timestamps, no
    measured durations, no wall-clock anything (the generator's
    [generation_time_ms] is deliberately excluded from [generate]
    replies) — the chaos test diffs reply bytes across a SIGKILL /
    restart, where re-run jobs execute at a different time on a cold
    cache.

    {!validate} runs in the parent at admission: full parameter
    parsing and bounds checks (PE counts, widths, cycle and budget
    caps), so a malformed job is rejected with [bad-request] before it
    is journaled, and a hostile one cannot make the parent itself do
    unbounded work.  {!run} executes in a procpool worker child; a
    deterministic in-job failure comes back as an error {e reply}
    (code [crashed]), while a worker death or hang is the
    supervisor's business and never reaches this module.

    Debug kinds ([sleep], [spin], [crash], [fail]) exist to let tests
    and operators exercise the supervision path on demand; they are
    rejected at admission unless the server runs with
    [--debug-kinds]. *)

val job_kinds : string list
(** The serviceable kinds: generate, simulate, verify, fuzz, inject. *)

val debug_kinds : string list
(** sleep, spin, crash, fail. *)

val validate : allow_debug:bool -> Proto.request -> (unit, string) result
(** Parse and bounds-check; the error is one [bad-request] line. *)

val warm : Proto.request -> unit
(** Parent-side cache warm: for kinds that simulate a generated design,
    touch the circuit cache so forked workers inherit the entry.  Never
    raises; quietly does nothing for kinds without a design or params
    that fail to parse ({!validate} already gated those). *)

val run : Proto.request -> string * Cache.snap
(** Execute (in a worker child) and return the reply line plus this
    job's cache-counter delta. *)

val encode_result : string * Cache.snap -> string
val decode_result : string -> string * Cache.snap
(** The lossless codec for results crossing the worker-process
    boundary ({!Busgen_par.Procpool.spec}). *)
