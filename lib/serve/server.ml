(* See server.mli for the architecture.  Single domain, single thread:
   the admission pump and the batch supervisor interleave through the
   supervisor's should_stop poll, never through shared-memory
   concurrency — which also keeps the process fork-safe for the
   procpool workers. *)

module Sv = Busgen_par.Supervise
module Procpool = Busgen_par.Procpool
module Intr = Busgen_par.Intr
module G = Bussyn.Generate

type transport = Stdio | Socket of string

type config = {
  cf_transport : transport;
  cf_journal : string option;
  cf_queue_depth : int;
  cf_client_inflight : int;
  cf_policy : Sv.policy;
  cf_jobs : int;
  cf_limits : Procpool.config;
  cf_max_frame : int;
  cf_debug_kinds : bool;
  cf_circuit_cap : int;
  cf_tape_cap : int;
  cf_journal_max_bytes : int;
  cf_log : string -> unit;
}

let config ?(journal = Some "serve-journal") ?(queue_depth = 256)
    ?(client_inflight = 64)
    ?(policy = Sv.policy ~deadline:30. ~retries:1 ())
    ?(jobs = 0) ?(limits = Procpool.config ()) ?(max_frame = 1024 * 1024)
    ?(debug_kinds = false) ?(circuit_cap = 64) ?(tape_cap = 8)
    ?(journal_max_bytes = 256 * 1024 * 1024)
    ?(log = fun m -> Printf.eprintf "%s\n%!" m) transport =
  if queue_depth < 1 then invalid_arg "serve: queue depth must be positive";
  if client_inflight < 1 then
    invalid_arg "serve: client in-flight cap must be positive";
  if max_frame < 1024 then invalid_arg "serve: frame cap must be >= 1024";
  if journal_max_bytes < 4096 then
    invalid_arg "serve: journal size cap must be >= 4096";
  {
    cf_transport = transport;
    cf_journal = journal;
    cf_queue_depth = queue_depth;
    cf_client_inflight = client_inflight;
    cf_policy = policy;
    cf_jobs = jobs;
    cf_limits = limits;
    cf_max_frame = max_frame;
    cf_debug_kinds = debug_kinds;
    cf_circuit_cap = circuit_cap;
    cf_tape_cap = tape_cap;
    cf_journal_max_bytes = journal_max_bytes;
    cf_log = log;
  }

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type client = {
  cl_id : int;
  cl_rfd : Unix.file_descr;
  cl_wfd : Unix.file_descr;
  cl_rbuf : Buffer.t;
  cl_out : Buffer.t;
  mutable cl_skip : bool;  (* discarding an oversized line *)
  mutable cl_eof : bool;
  mutable cl_dead : bool;  (* write side gone; stop replying *)
}

type pending_job = {
  pj_id : string;
  pj_line : string;
  pj_rq : Proto.request;
  pj_client : int;  (* -1: recovered from the journal, no live client *)
  pj_admitted : float;
}

type counters = {
  mutable ct_accepted : int;
  mutable ct_completed : int;
  mutable ct_failed : int;  (* crashed / timed-out / quarantined jobs *)
  mutable ct_shed_expired : int;
  mutable ct_rej_overloaded : int;
  mutable ct_rej_bad : int;
  mutable ct_rej_duplicate : int;
  mutable ct_rej_shutdown : int;
  mutable ct_rej_oversized : int;
  mutable ct_recovered : int;
  mutable ct_journal_corrupt : int;
}

type state = {
  cfg : config;
  journal : Journal.t option;
  clients : (int, client) Hashtbl.t;
  mutable next_client : int;
  listener : Unix.file_descr option;
  mutable stdio_client : int;  (* client id, or -1 *)
  pending : pending_job Queue.t;
  seen : (string, unit) Hashtbl.t;
  unfinished : (string, unit) Hashtbl.t;
  inflight : (int, int ref) Hashtbl.t;  (* per-client unfinished count *)
  ct : counters;
  mutable child_cache : Cache.snap;  (* worker-side counter deltas *)
  mutable running : int;  (* jobs inside the current batch *)
  mutable draining : bool;
  start : float;
}

let now () = Unix.gettimeofday ()

let set_nonblock fd = try Unix.set_nonblock fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Client IO                                                           *)
(* ------------------------------------------------------------------ *)

(* A stuffed peer must not stall the daemon: writes are non-blocking
   through a bounded buffer, and a client that stops reading past the
   bound is dropped (its results live on in the journal). *)
let out_cap = 8 * 1024 * 1024

let try_flush st c =
  if (not c.cl_dead) && Buffer.length c.cl_out > 0 then begin
    let data = Buffer.to_bytes c.cl_out in
    let n = Bytes.length data in
    let written = ref 0 in
    (try
       while !written < n do
         let k = Unix.write c.cl_wfd data !written (n - !written) in
         if k = 0 then raise Exit;
         written := !written + k
       done
     with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | Unix.Unix_error _ | Exit ->
      c.cl_dead <- true;
      st.cfg.cf_log
        (Printf.sprintf "[serve] client %d: write failed, dropping" c.cl_id));
    if !written > 0 then begin
      let rest = Bytes.sub_string data !written (n - !written) in
      Buffer.clear c.cl_out;
      Buffer.add_string c.cl_out rest
    end
  end

let queue_reply st c line =
  if not c.cl_dead then begin
    if Buffer.length c.cl_out > out_cap then begin
      c.cl_dead <- true;
      st.cfg.cf_log
        (Printf.sprintf
           "[serve] client %d: output buffer over %d bytes, dropping" c.cl_id
           out_cap)
    end
    else begin
      Buffer.add_string c.cl_out line;
      Buffer.add_char c.cl_out '\n';
      try_flush st c
    end
  end

let reply_to_client st cid line =
  match Hashtbl.find_opt st.clients cid with
  | Some c -> queue_reply st c line
  | None -> ()

let inflight_of st cid =
  match Hashtbl.find_opt st.inflight cid with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace st.inflight cid r;
    r

(* EOF only closes the request direction: the client stays registered
   until its in-flight jobs have resolved and their replies flushed
   (or its write side died), so a batch finishing after the peer shuts
   down its send half still delivers results. *)
let client_gone st c =
  c.cl_eof <- true;
  if c.cl_id = st.stdio_client && not st.draining then begin
    (* EOF on stdin is the stdio drain signal. *)
    st.cfg.cf_log "[serve] stdin closed; draining";
    st.draining <- true
  end

let forget st c =
  Hashtbl.remove st.clients c.cl_id;
  (match Hashtbl.find_opt st.inflight c.cl_id with
  | Some r when !r <= 0 -> Hashtbl.remove st.inflight c.cl_id
  | _ -> ());
  if c.cl_id <> st.stdio_client then (
    try Unix.close c.cl_rfd with Unix.Unix_error _ -> ())

(* Collect-then-remove: callers iterate st.clients, and Hashtbl
   mutation during iteration is unspecified. *)
let reap_clients st =
  let dead =
    Hashtbl.fold
      (fun _ c acc ->
        let inflight =
          match Hashtbl.find_opt st.inflight c.cl_id with
          | Some r -> !r
          | None -> 0
        in
        if
          c.cl_dead
          || (c.cl_eof && inflight <= 0 && Buffer.length c.cl_out = 0)
        then c :: acc
        else acc)
      st.clients []
  in
  List.iter (fun c -> forget st c) dead

(* ------------------------------------------------------------------ *)
(* Stats / health                                                      *)
(* ------------------------------------------------------------------ *)

let stats_of (s : Busgen_cache.Lru.stats) =
  Json.Obj
    [
      ("size", Json.Int s.Busgen_cache.Lru.st_size);
      ("cap", Json.Int s.Busgen_cache.Lru.st_cap);
      ("hits", Json.Int s.Busgen_cache.Lru.st_hits);
      ("misses", Json.Int s.Busgen_cache.Lru.st_misses);
      ("evictions", Json.Int s.Busgen_cache.Lru.st_evictions);
    ]

let stats_result st =
  let parent = Cache.snapshot () in
  let agg = Cache.add parent st.child_cache in
  let ct = st.ct in
  Json.Obj
    [
      ("version", Json.String G.tool_version);
      ("uptime_s", Json.Int (int_of_float (now () -. st.start)));
      ("backend", Json.String "proc");
      ("workers", Json.Int st.cfg.cf_jobs);
      ("draining", Json.Bool st.draining);
      ( "queue",
        Json.Obj
          [
            ("pending", Json.Int (Queue.length st.pending));
            ("running", Json.Int st.running);
            ("unfinished", Json.Int (Hashtbl.length st.unfinished));
            ("depth_cap", Json.Int st.cfg.cf_queue_depth);
            ("client_inflight_cap", Json.Int st.cfg.cf_client_inflight);
          ] );
      ( "counters",
        Json.Obj
          [
            ("accepted", Json.Int ct.ct_accepted);
            ("completed", Json.Int ct.ct_completed);
            ("failed", Json.Int ct.ct_failed);
            ("shed_expired", Json.Int ct.ct_shed_expired);
            ("rejected_overloaded", Json.Int ct.ct_rej_overloaded);
            ("rejected_bad_request", Json.Int ct.ct_rej_bad);
            ("rejected_duplicate", Json.Int ct.ct_rej_duplicate);
            ("rejected_shutting_down", Json.Int ct.ct_rej_shutdown);
            ("rejected_oversized", Json.Int ct.ct_rej_oversized);
            ("recovered", Json.Int ct.ct_recovered);
          ] );
      ( "cache",
        Json.Obj
          [
            ("circuits", stats_of agg.Cache.sn_circuits);
            ("tapes", stats_of agg.Cache.sn_tapes);
            ("catalog", stats_of (Busgen_modlib.Catalog.cache_stats ()));
          ] );
      ( "journal",
        match st.journal with
        | None -> Json.Null
        | Some j ->
          Json.Obj
            [
              ("path", Json.String (Journal.path j));
              ("bytes", Json.Int (Journal.size_bytes j));
              ("appends", Json.Int (Journal.records_written j));
              ("corrupt_skipped", Json.Int st.ct.ct_journal_corrupt);
            ] );
    ]

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let journal_accept st j =
  match st.journal with
  | Some jn -> Journal.accept jn ~id:j.pj_id ~line:j.pj_line
  | None -> ()

let journal_done st ~id ~reply =
  match st.journal with
  | Some jn -> Journal.done_ jn ~id ~reply
  | None -> ()

let journal_quarantine st ~id ~reason =
  match st.journal with
  | Some jn -> Journal.quarantine jn ~id ~reason
  | None -> ()

let process_line st c line =
  if String.trim line <> "" then begin
    match Proto.parse_request line with
    | Error e ->
      st.ct.ct_rej_bad <- st.ct.ct_rej_bad + 1;
      queue_reply st c (Proto.err_reply ~code:Proto.code_bad_request e)
    | Ok rq -> (
      let id = rq.Proto.rq_id in
      match rq.Proto.rq_kind with
      | "health" | "stats" ->
        queue_reply st c (Proto.ok_reply ~id (stats_result st))
      | "drain" ->
        if not st.draining then st.cfg.cf_log "[serve] drain requested";
        st.draining <- true;
        queue_reply st c
          (Proto.ok_reply ~id (Json.Obj [ ("draining", Json.Bool true) ]))
      | _ when st.draining ->
        st.ct.ct_rej_shutdown <- st.ct.ct_rej_shutdown + 1;
        queue_reply st c
          (Proto.err_reply ~id ~code:Proto.code_shutting_down
             "server is draining; no new jobs")
      | _ when Hashtbl.mem st.seen id ->
        st.ct.ct_rej_duplicate <- st.ct.ct_rej_duplicate + 1;
        queue_reply st c
          (Proto.err_reply ~id ~code:Proto.code_duplicate_id
             (Printf.sprintf "request id %S was already accepted" id))
      | _ when Hashtbl.length st.unfinished >= st.cfg.cf_queue_depth ->
        st.ct.ct_rej_overloaded <- st.ct.ct_rej_overloaded + 1;
        queue_reply st c
          (Proto.err_reply ~id ~code:Proto.code_overloaded
             (Printf.sprintf "queue depth %d reached" st.cfg.cf_queue_depth))
      | _ when !(inflight_of st c.cl_id) >= st.cfg.cf_client_inflight ->
        st.ct.ct_rej_overloaded <- st.ct.ct_rej_overloaded + 1;
        queue_reply st c
          (Proto.err_reply ~id ~code:Proto.code_overloaded
             (Printf.sprintf "client in-flight cap %d reached"
                st.cfg.cf_client_inflight))
      | _ -> (
        match Exec.validate ~allow_debug:st.cfg.cf_debug_kinds rq with
        | Error e ->
          st.ct.ct_rej_bad <- st.ct.ct_rej_bad + 1;
          queue_reply st c (Proto.err_reply ~id ~code:Proto.code_bad_request e)
        | Ok () ->
          let j =
            {
              pj_id = id;
              pj_line = line;
              pj_rq = rq;
              pj_client = c.cl_id;
              pj_admitted = now ();
            }
          in
          journal_accept st j;
          Hashtbl.replace st.seen id ();
          Hashtbl.replace st.unfinished id ();
          incr (inflight_of st c.cl_id);
          st.ct.ct_accepted <- st.ct.ct_accepted + 1;
          (* Warm the circuit cache in the parent so the batch's forked
             workers inherit the entry copy-on-write. *)
          Exec.warm rq;
          Queue.push j st.pending))
  end

(* Split complete lines out of the client's read buffer; handle the
   oversized-line protocol (reply once, discard until newline). *)
let drain_rbuf st c =
  let data = Buffer.contents c.cl_rbuf in
  Buffer.clear c.cl_rbuf;
  let len = String.length data in
  let start = ref 0 in
  (try
     while !start < len do
       match String.index_from data !start '\n' with
       | exception Not_found ->
         (* No newline: partial line (or partial garbage being
            skipped).  Keep what is ours to keep. *)
         if c.cl_skip then start := len
         else begin
           let rest = len - !start in
           if rest > st.cfg.cf_max_frame then begin
             st.ct.ct_rej_oversized <- st.ct.ct_rej_oversized + 1;
             queue_reply st c
               (Proto.err_reply ~code:Proto.code_oversized
                  (Printf.sprintf "request line exceeds %d bytes"
                     st.cfg.cf_max_frame));
             c.cl_skip <- true
           end
           else Buffer.add_substring c.cl_rbuf data !start rest;
           start := len
         end;
         raise Exit
       | nl ->
         (if c.cl_skip then c.cl_skip <- false
          else
            let line = String.sub data !start (nl - !start) in
            if String.length line > st.cfg.cf_max_frame then begin
              st.ct.ct_rej_oversized <- st.ct.ct_rej_oversized + 1;
              queue_reply st c
                (Proto.err_reply ~code:Proto.code_oversized
                   (Printf.sprintf "request line exceeds %d bytes"
                      st.cfg.cf_max_frame))
            end
            else process_line st c line);
         start := nl + 1
     done
   with Exit -> ())

let read_client st c =
  let buf = Bytes.create 65536 in
  match Unix.read c.cl_rfd buf 0 (Bytes.length buf) with
  | 0 -> client_gone st c
  | n ->
    Buffer.add_subbytes c.cl_rbuf buf 0 n;
    drain_rbuf st c
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    ()
  | exception Unix.Unix_error _ -> client_gone st c

let add_client st ~rfd ~wfd =
  let id = st.next_client in
  st.next_client <- id + 1;
  set_nonblock rfd;
  set_nonblock wfd;
  let c =
    {
      cl_id = id;
      cl_rfd = rfd;
      cl_wfd = wfd;
      cl_rbuf = Buffer.create 256;
      cl_out = Buffer.create 256;
      cl_skip = false;
      cl_eof = false;
      cl_dead = false;
    }
  in
  Hashtbl.replace st.clients id c;
  c

let accept_new st =
  match st.listener with
  | None -> ()
  | Some lfd ->
    let rec go () =
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
        ignore (add_client st ~rfd:fd ~wfd:fd);
        go ()
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()

(* One admission-pump step: wait up to [timeout] for transport
   activity, then accept / read / flush.  Never raises — this runs
   inside the supervisor's should_stop poll. *)
let pump st ~timeout =
  try
    let reads =
      (match st.listener with Some fd -> [ fd ] | None -> [])
      @ Hashtbl.fold
          (fun _ c acc -> if c.cl_eof then acc else c.cl_rfd :: acc)
          st.clients []
    in
    let writes =
      Hashtbl.fold
        (fun _ c acc ->
          if (not c.cl_dead) && Buffer.length c.cl_out > 0 then
            c.cl_wfd :: acc
          else acc)
        st.clients []
    in
    if reads = [] && writes = [] then begin
      if timeout > 0. then ignore (Unix.select [] [] [] timeout)
    end
    else begin
      match Unix.select reads writes [] timeout with
      | rs, ws, _ ->
        if List.exists (fun fd -> st.listener = Some fd) rs then
          accept_new st;
        Hashtbl.iter
          (fun _ c ->
            if (not c.cl_eof) && List.memq c.cl_rfd rs then
              read_client st c)
          st.clients;
        Hashtbl.iter
          (fun _ c -> if List.memq c.cl_wfd ws then try_flush st c)
          st.clients
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end;
    reap_clients st
  with _ -> ()

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)
(* ------------------------------------------------------------------ *)

let resolve st j reply ~terminal =
  Hashtbl.remove st.unfinished j.pj_id;
  (match Hashtbl.find_opt st.inflight j.pj_client with
  | Some r ->
    decr r;
    if !r <= 0 && not (Hashtbl.mem st.clients j.pj_client) then
      Hashtbl.remove st.inflight j.pj_client
  | None -> ());
  (match terminal with
  | `Done -> journal_done st ~id:j.pj_id ~reply
  | `Quarantine reason -> journal_quarantine st ~id:j.pj_id ~reason
  | `Nothing -> ());
  if j.pj_client >= 0 then reply_to_client st j.pj_client reply;
  reap_clients st

(* Shed queue entries whose client-supplied queue deadline has passed
   before they ever started: dead work the daemon refuses to run. *)
let shed_expired st =
  let keep = Queue.create () in
  let t = now () in
  Queue.iter
    (fun j ->
      match j.pj_rq.Proto.rq_deadline_ms with
      | Some ms
        when t -. j.pj_admitted > float_of_int ms /. 1000. ->
        st.ct.ct_shed_expired <- st.ct.ct_shed_expired + 1;
        let reply =
          Proto.err_reply ~id:j.pj_id ~code:Proto.code_expired
            (Printf.sprintf "queue deadline %dms passed before execution" ms)
        in
        resolve st j reply ~terminal:(`Quarantine "queue deadline expired")
      | _ -> Queue.push j keep)
    st.pending;
  Queue.clear st.pending;
  Queue.transfer keep st.pending

let hard_stop () = Intr.hard_requested ()

let run_batch st =
  let batch = Array.of_seq (Queue.to_seq st.pending) in
  Queue.clear st.pending;
  let n = Array.length batch in
  st.running <- n;
  let jobs =
    if st.cfg.cf_jobs > 0 then min st.cfg.cf_jobs n
    else min n (Busgen_par.Pool.default_jobs ())
  in
  let backend =
    Sv.Processes
      {
        Procpool.sp_config = st.cfg.cf_limits;
        sp_encode = Exec.encode_result;
        sp_decode = Exec.decode_result;
      }
  in
  let on_result i outcome =
    (try
       let j = batch.(i) in
       st.running <- st.running - 1;
       match outcome with
       | Sv.Ok (reply, delta) ->
         st.child_cache <- Cache.add st.child_cache delta;
         st.ct.ct_completed <- st.ct.ct_completed + 1;
         resolve st j reply ~terminal:`Done
       | o ->
         let code =
           match o with
           | Sv.Crashed _ -> Proto.code_crashed
           | Sv.Timed_out _ -> Proto.code_timed_out
           | Sv.Quarantined _ -> Proto.code_quarantined
           | Sv.Ok _ -> assert false
         in
         let why = Sv.describe o in
         st.ct.ct_failed <- st.ct.ct_failed + 1;
         st.cfg.cf_log
           (Printf.sprintf "[serve] job %s quarantined: %s" j.pj_id why);
         resolve st j
           (Proto.err_reply ~id:j.pj_id ~code why)
           ~terminal:(`Quarantine why)
     with e ->
       st.cfg.cf_log
         (Printf.sprintf "[serve] on_result error: %s" (Printexc.to_string e)));
    ()
  in
  let should_stop () =
    pump st ~timeout:0.;
    hard_stop ()
  in
  let outcomes =
    Sv.run ~policy:st.cfg.cf_policy ~backend ~jobs ~on_result ~should_stop n
      (fun i -> Exec.run batch.(i).pj_rq)
  in
  ignore (outcomes : (string * Cache.snap) Sv.outcome array);
  st.running <- 0;
  match st.journal with
  | Some jn when Journal.size_bytes jn > st.cfg.cf_journal_max_bytes ->
    Journal.compact jn ~keep_done:1024
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Startup: transport, journal recovery                                *)
(* ------------------------------------------------------------------ *)

let bind_socket path =
  if Sys.file_exists path then begin
    (* A live server owns it; a stale socket from a SIGKILLed one is
       normal and safe to replace. *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith (Printf.sprintf "socket %s already has a live server" path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  set_nonblock fd;
  fd

let create_state cfg =
  let journal, recovery =
    match cfg.cf_journal with
    | None -> (None, None)
    | Some dir ->
      let j, rc = Journal.open_ ~log:cfg.cf_log ~dir () in
      (Some j, Some rc)
  in
  let listener =
    match cfg.cf_transport with
    | Stdio -> None
    | Socket path -> Some (bind_socket path)
  in
  let st =
    {
      cfg;
      journal;
      clients = Hashtbl.create 16;
      next_client = 0;
      listener;
      stdio_client = -1;
      pending = Queue.create ();
      seen = Hashtbl.create 256;
      unfinished = Hashtbl.create 64;
      inflight = Hashtbl.create 16;
      ct =
        {
          ct_accepted = 0;
          ct_completed = 0;
          ct_failed = 0;
          ct_shed_expired = 0;
          ct_rej_overloaded = 0;
          ct_rej_bad = 0;
          ct_rej_duplicate = 0;
          ct_rej_shutdown = 0;
          ct_rej_oversized = 0;
          ct_recovered = 0;
          ct_journal_corrupt = 0;
        };
      child_cache = Cache.zero;
      running = 0;
      draining = false;
      start = now ();
    }
  in
  (match recovery with
  | None -> ()
  | Some rc ->
    st.ct.ct_journal_corrupt <- rc.Journal.rc_corrupt;
    Hashtbl.iter (fun id () -> Hashtbl.replace st.seen id ()) rc.Journal.rc_seen;
    List.iter
      (fun (id, line) ->
        match Proto.parse_request line with
        | Error e ->
          (* A journaled request we can no longer parse: quarantine it
             and keep serving the rest. *)
          let reason = "unparseable journaled request: " ^ e in
          cfg.cf_log (Printf.sprintf "[serve] job %s quarantined: %s" id reason);
          journal_quarantine st ~id ~reason
        | Ok rq -> (
          match Exec.validate ~allow_debug:cfg.cf_debug_kinds rq with
          | Error e ->
            let reason = "journaled request no longer valid: " ^ e in
            cfg.cf_log
              (Printf.sprintf "[serve] job %s quarantined: %s" id reason);
            journal_quarantine st ~id ~reason
          | Ok () ->
            Hashtbl.replace st.unfinished id ();
            st.ct.ct_recovered <- st.ct.ct_recovered + 1;
            Exec.warm rq;
            Queue.push
              {
                pj_id = id;
                pj_line = line;
                pj_rq = rq;
                pj_client = -1;
                pj_admitted = now ();
              }
              st.pending))
      rc.Journal.rc_pending;
    if st.ct.ct_recovered > 0 then
      cfg.cf_log
        (Printf.sprintf "[serve] recovered %d unfinished job(s) from %s"
           st.ct.ct_recovered
           (match journal with Some j -> Journal.path j | None -> "journal")));
  (match cfg.cf_transport with
  | Stdio ->
    let c = add_client st ~rfd:Unix.stdin ~wfd:Unix.stdout in
    st.stdio_client <- c.cl_id
  | Socket _ -> ());
  st

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let shutdown st ~code =
  (match st.journal with
  | Some jn ->
    Journal.sync jn;
    Journal.close jn
  | None -> ());
  (* Push out any buffered replies before closing — blocking, so a
     momentarily full pipe cannot drop results at exit. *)
  Hashtbl.iter
    (fun _ c ->
      if not c.cl_dead then begin
        (try Unix.clear_nonblock c.cl_wfd with Unix.Unix_error _ -> ());
        try_flush st c
      end)
    st.clients;
  (match st.listener with
  | Some fd -> (
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match st.cfg.cf_transport with
    | Socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Stdio -> ())
  | None -> ());
  Hashtbl.iter
    (fun _ c ->
      if c.cl_id <> st.stdio_client then (
        try Unix.close c.cl_rfd with Unix.Unix_error _ -> ()))
    st.clients;
  code

let run cfg =
  Intr.install ();
  Cache.configure ~circuit_cap:cfg.cf_circuit_cap ~tape_cap:cfg.cf_tape_cap ();
  let st = create_state cfg in
  (match cfg.cf_transport with
  | Socket path -> cfg.cf_log (Printf.sprintf "[serve] listening on %s" path)
  | Stdio -> ());
  let rec loop () =
    if Intr.requested () && not st.draining then begin
      cfg.cf_log "[serve] signal received; draining (again to abort)";
      st.draining <- true
    end;
    if hard_stop () then begin
      cfg.cf_log "[serve] second signal: aborting with jobs journaled";
      shutdown st ~code:130
    end
    else begin
      shed_expired st;
      if Queue.is_empty st.pending then
        if st.draining then begin
          cfg.cf_log
            (Printf.sprintf
               "[serve] drained: %d completed, %d failed, %d shed"
               st.ct.ct_completed st.ct.ct_failed st.ct.ct_shed_expired);
          shutdown st ~code:0
        end
        else begin
          pump st ~timeout:0.05;
          loop ()
        end
      else begin
        match run_batch st with
        | () -> loop ()
        | exception Sv.Interrupted ->
          cfg.cf_log "[serve] batch aborted; unfinished jobs stay journaled";
          shutdown st ~code:130
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Client-side helpers                                                 *)
(* ------------------------------------------------------------------ *)

let with_connection ~socket f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
  | () ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> f fd)

let read_line_fd ?(timeout = 120.) fd buf =
  (* Reads into [buf] until it holds a newline; returns the first line. *)
  let rec find_line () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some nl ->
      let all = Buffer.contents buf in
      let line = String.sub all 0 nl in
      Buffer.clear buf;
      Buffer.add_substring buf all (nl + 1) (String.length all - nl - 1);
      Some line
    | None -> (
      match Unix.select [ fd ] [] [] timeout with
      | [], _, _ -> None
      | _ -> (
        let b = Bytes.create 65536 in
        match Unix.read fd b 0 (Bytes.length b) with
        | 0 -> None
        | n ->
          Buffer.add_subbytes buf b 0 n;
          find_line ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> find_line ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> find_line ())
  in
  find_line ()

let send_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let ping ~socket =
  with_connection ~socket (fun fd ->
      send_all fd "{\"id\":\"ping\",\"kind\":\"health\"}\n";
      let buf = Buffer.create 256 in
      match read_line_fd ~timeout:10. fd buf with
      | Some line -> Ok line
      | None -> Error "no reply from server (timeout or closed)")

let send_file ?(timeout = 120.) ~socket ~path () =
  let read_lines ic =
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    go []
  in
  let lines =
    if path = "-" then Ok (read_lines stdin)
    else
      match open_in path with
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Ok (read_lines ic))
      | exception Sys_error e -> Error e
  in
  match lines with
  | Error e -> Error e
  | Ok lines ->
    let lines = List.filter (fun l -> String.trim l <> "") lines in
    with_connection ~socket (fun fd ->
        List.iter (fun l -> send_all fd (l ^ "\n")) lines;
        let buf = Buffer.create 4096 in
        let rec collect n =
          if n >= List.length lines then Ok n
          else
            match read_line_fd ~timeout fd buf with
            | Some reply ->
              print_endline reply;
              collect (n + 1)
            | None ->
              if n = 0 then Error "no replies from server (timeout or closed)"
              else Ok n
        in
        collect 0)

(* ------------------------------------------------------------------ *)
(* Journal inspection                                                  *)
(* ------------------------------------------------------------------ *)

let dump_journal ~dir =
  match Journal.read_all ~dir with
  | Error e -> Error e
  | Ok (records, corrupt, torn) ->
    List.iter
      (fun r ->
        let obj =
          match r with
          | Journal.Accept (id, line) ->
            Json.Obj
              [
                ("record", Json.String "accept");
                ("id", Json.String id);
                ("request", Json.String line);
              ]
          | Journal.Done (id, reply) ->
            Json.Obj
              ([ ("record", Json.String "done"); ("id", Json.String id) ]
              @
              if reply = "" then [ ("compacted", Json.Bool true) ]
              else [ ("reply", Json.String reply) ])
          | Journal.Quarantine (id, reason) ->
            Json.Obj
              [
                ("record", Json.String "quarantine");
                ("id", Json.String id);
                ("reason", Json.String reason);
              ]
        in
        print_endline (Json.to_string obj))
      records;
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("record", Json.String "summary");
              ("records", Json.Int (List.length records));
              ("corrupt_skipped", Json.Int corrupt);
              ("torn_bytes", Json.Int torn);
            ]));
    Ok ()

let dump_replies ~dir =
  match Journal.read_all ~dir with
  | Error e -> Error e
  | Ok (records, _corrupt, _torn) ->
    let tbl = Hashtbl.create 64 in
    List.iter
      (function
        | Journal.Done (id, reply) when reply <> "" ->
          Hashtbl.replace tbl id reply
        | _ -> ())
      records;
    let sorted =
      List.sort compare (Hashtbl.fold (fun id r acc -> (id, r) :: acc) tbl [])
    in
    List.iter (fun (_, reply) -> print_endline reply) sorted;
    Ok ()
