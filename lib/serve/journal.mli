(** Write-ahead journal of the daemon's request queue.

    One append-only file ([<dir>/journal.bsjl]) of CRC-framed records,
    written {e before} the action they describe is acknowledged:

    - [Accept (id, request_line)] — the request was admitted; until a
      matching terminal record appears, a restart must run it.
    - [Done (id, reply_line)] — the job finished; the stored reply is
      the byte-exact line that was (or would have been) sent.
    - [Quarantine (id, reason)] — the job was given up on (crash /
      deadline / unparseable journal entry); a restart must {e not}
      rerun it.

    Framing mirrors the procpool wire protocol (8-byte LE length,
    payload, 8-byte LE CRC-32 of the payload; payload is a lib/binio
    record), so torn and corrupted writes are detectable per record.
    Recovery semantics on open:

    - a torn tail (partial final frame — the SIGKILL case) is
      truncated away and counted in [rc_torn_bytes];
    - a mid-file record with a bad CRC is skipped and counted in
      [rc_corrupt] (and the [Accept]s it may have hidden are lost with
      it — the client never got a reply and can safely resubmit, which
      is why ids live in the journal and not only in memory);
    - a missing or foreign header sets the file aside as
      [journal.bsjl.bad] and starts fresh (graceful degradation
      beats refusing to serve).

    Durability target is process death, not power loss: records are
    pushed to the kernel with plain [write] (SIGKILL cannot revoke
    them); {!sync} adds an [fsync] and is called on graceful drain.

    Compaction ({!compact}, triggered automatically past a size cap)
    atomically rewrites the file (temp + rename, the lib/ckpt
    discipline) keeping unresolved [Accept]s and recent [Done]s in
    full; older [Done] replies are reduced to id-only markers that
    still block duplicate ids and reruns. *)

type t

type record =
  | Accept of string * string  (** id, request line *)
  | Done of string * string  (** id, reply line ("" once compacted) *)
  | Quarantine of string * string  (** id, reason *)

type recovery = {
  rc_pending : (string * string) list;
      (** accepted-but-unresolved (id, request line), admission order *)
  rc_seen : (string, unit) Hashtbl.t;  (** every id ever accepted *)
  rc_replies : (string * string) list;
      (** resolved (id, reply line) still in the journal, in order —
          what a restarted server does {e not} resend but the chaos
          diff reads back via {!read_all} *)
  rc_done : int;
  rc_quarantined : int;
  rc_corrupt : int;  (** CRC-mismatched records skipped *)
  rc_torn_bytes : int;  (** truncated partial tail, in bytes *)
  rc_records : int;  (** valid records recovered *)
}

val open_ : ?log:(string -> unit) -> dir:string -> unit -> t * recovery
(** Create [dir] if needed, recover the existing journal per the rules
    above, and open it for appending.  [log] receives one line per
    notable event (torn tail, corrupt skip, header rotation). *)

val accept : t -> id:string -> line:string -> unit
val done_ : t -> id:string -> reply:string -> unit
val quarantine : t -> id:string -> reason:string -> unit

val sync : t -> unit
(** [fsync] the journal (drain path). *)

val close : t -> unit

val path : t -> string
val size_bytes : t -> int
val records_written : t -> int
(** Appends since open (recovery not included). *)

val compact : t -> keep_done:int -> unit
(** Atomically rewrite the journal: pending [Accept]s and the last
    [keep_done] [Done]s survive in full, earlier [Done]s shrink to
    id-only markers, [Quarantine]s survive in full. *)

val read_all :
  dir:string ->
  (record list * int * int, string) result
(** Offline scan for [--dump-journal] / the chaos diff: the valid
    records plus (corrupt record count, torn tail bytes).  [Error] if
    there is no journal or the header is foreign. *)
