(** The serve wire protocol: newline-delimited JSON, one request per
    line, one reply per request, correlated by [id].

    Request: [{"id":"r1","kind":"generate","params":{...}}] with an
    optional ["deadline_ms"] (queue deadline: if the job has not
    {e started} within that many milliseconds of admission it is shed
    with code [expired] instead of running dead work).

    Reply (success): [{"id":"r1","ok":true,"result":{...}}].
    Reply (error):   [{"id":"r1","ok":false,"code":"...","error":"..."}]
    — [id] is absent when the request was too broken to carry one.

    The error codes are a closed set (the [code_*] values below); the
    human-readable [error] text may evolve, the codes are the API. *)

type request = {
  rq_id : string;
  rq_kind : string;
  rq_params : Json.t;  (** always an [Obj] (defaults to empty) *)
  rq_deadline_ms : int option;
}

val parse_request : string -> (request, string) result
(** Validate one line: JSON object, non-empty printable [id] of at
    most 128 bytes, non-empty [kind], optional [params] object,
    optional positive [deadline_ms].  Unknown top-level fields are
    ignored (forward compatibility).  The error string is one line,
    suitable for a [bad-request] reply. *)

(** {2 Reply builders} — return the reply line {e without} the
    trailing newline. *)

val ok_reply : id:string -> Json.t -> string
val err_reply : ?id:string -> code:string -> string -> string

(** {2 Error codes} *)

val code_bad_request : string  (** unparseable or invalid request *)

val code_duplicate_id : string
(** id already used by an accepted request (this run or journaled) *)

val code_overloaded : string  (** queue depth or in-flight cap hit *)

val code_expired : string  (** queue deadline passed before start *)

val code_shutting_down : string  (** draining; no new jobs admitted *)

val code_crashed : string  (** job failed/died, retries exhausted *)

val code_timed_out : string  (** job exceeded its execution deadline *)

val code_quarantined : string  (** job or journal entry quarantined *)

val code_oversized : string  (** request line exceeded the frame cap *)
