(* See exec.mli: parse/validate in the parent, execute in a worker
   child, reply bytes a pure function of the request. *)

module G = Bussyn.Generate
module A = Bussyn.Archs
module E = Busgen_rtl.Engine
module C = Busgen_rtl.Circuit
module B = Busgen_rtl.Bits
module I = Busgen_rtl.Interp
module Tb = Busgen_rtl.Testbench
module V_pack = Busgen_verify.Pack
module V_prop = Busgen_verify.Prop
module V_traffic = Busgen_verify.Traffic
module V_fuzz = Busgen_verify.Fuzz
module X = Busgen_explore.Explore
module Xp = Busgen_explore.Profile
module Io = Busgen_binio.Io

let job_kinds = [ "generate"; "simulate"; "verify"; "fuzz"; "inject"; "explore" ]
let debug_kinds = [ "sleep"; "spin"; "crash"; "fail" ]

(* ------------------------------------------------------------------ *)
(* Parameter parsing (raises Failure; validate catches)                *)
(* ------------------------------------------------------------------ *)

let bad fmt = Printf.ksprintf failwith fmt

let p_int params name ~default ~min ~max =
  match Json.member name params with
  | None -> default
  | Some j -> (
    match Json.get_int j with
    | Some v when v >= min && v <= max -> v
    | Some v -> bad "\"%s\" = %d out of range [%d, %d]" name v min max
    | None -> bad "\"%s\" must be an integer" name)

let p_bool params name ~default =
  match Json.member name params with
  | None -> default
  | Some j -> (
    match Json.get_bool j with
    | Some b -> b
    | None -> bad "\"%s\" must be a boolean" name)

let p_string_opt params name =
  match Json.member name params with
  | None -> None
  | Some j -> (
    match Json.get_string j with
    | Some s -> Some s
    | None -> bad "\"%s\" must be a string" name)

let p_arch params =
  match p_string_opt params "arch" with
  | None -> bad "missing \"arch\""
  | Some s -> (
    match G.arch_of_string s with Ok a -> a | Error e -> failwith e)

let p_engine params =
  match p_string_opt params "engine" with
  | None -> E.default_kind
  | Some s -> (
    match E.kind_of_string s with Ok k -> k | Error e -> failwith e)

(* Bounds: generous enough for every documented workload, tight enough
   that an admitted job is bounded work (the supervisor's deadline is
   the real backstop; these keep the parent-side warm cheap too). *)
let p_pes params = p_int params "pes" ~default:2 ~min:1 ~max:16
let p_protect params = p_bool params "protect" ~default:false

type workload = W_ofdm_ppa | W_ofdm_fpa | W_mpeg2 | W_database

let workload_name = function
  | W_ofdm_ppa -> "ofdm-ppa"
  | W_ofdm_fpa -> "ofdm-fpa"
  | W_mpeg2 -> "mpeg2"
  | W_database -> "database"

let p_workload params =
  match p_string_opt params "workload" with
  | None -> bad "missing \"workload\""
  | Some "ofdm-ppa" -> W_ofdm_ppa
  | Some "ofdm-fpa" -> W_ofdm_fpa
  | Some "mpeg2" -> W_mpeg2
  | Some "database" -> W_database
  | Some s ->
    bad "unknown workload %S (expected ofdm-ppa, ofdm-fpa, mpeg2 or database)"
      s

type job =
  | J_generate of { arch : G.arch; config : A.config; emit_verilog : bool }
  | J_simulate of { arch : G.arch; workload : workload; max_cycles : int }
  | J_verify of {
      arch : G.arch;
      config : A.config;
      cycles : int;
      kind : E.kind;
    }
  | J_fuzz of { seed : int; budget : int; cycles : int; first_case : int }
  | J_inject of {
      arch : G.arch;
      config : A.config;
      seed : int;
      n : int;
      cycles : int;
      kind : E.kind;
    }
  | J_explore of { profile : Xp.t; kind : E.kind }
  | J_sleep of int  (** milliseconds *)
  | J_spin
  | J_crash of int  (** signal to die by *)
  | J_fail of string  (** deterministic exception text *)

let small_config params =
  { (A.small_config ~n_pes:(p_pes params)) with A.protect = p_protect params }

let parse_job ~allow_debug (rq : Proto.request) =
  let params = rq.Proto.rq_params in
  match rq.Proto.rq_kind with
  | "generate" ->
    let pes = p_pes params in
    let config =
      {
        (A.paper_config ~n_pes:pes) with
        A.bus_data_width = p_int params "data_width" ~default:64 ~min:8 ~max:256;
        mem_addr_width =
          p_int params "mem_addr_width" ~default:20 ~min:4 ~max:32;
        global_mem_addr_width =
          p_int params "mem_addr_width" ~default:20 ~min:4 ~max:32;
        fifo_depth = p_int params "fifo_depth" ~default:64 ~min:2 ~max:4096;
        protect = p_protect params;
      }
    in
    J_generate
      {
        arch = p_arch params;
        config;
        emit_verilog = p_bool params "verilog" ~default:false;
      }
  | "simulate" ->
    let arch = p_arch params in
    let workload = p_workload params in
    let supported =
      match workload with
      | W_ofdm_ppa -> Busgen_apps.Ofdm.supported arch Busgen_apps.Ofdm.Ppa
      | W_ofdm_fpa -> Busgen_apps.Ofdm.supported arch Busgen_apps.Ofdm.Fpa
      | W_mpeg2 -> Busgen_apps.Mpeg2.supported arch
      | W_database -> Busgen_apps.Database.supported arch
    in
    if not supported then
      bad "workload %s is not supported on %s" (workload_name workload)
        (G.arch_name arch);
    J_simulate
      {
        arch;
        workload;
        max_cycles =
          p_int params "max_cycles" ~default:20_000_000 ~min:1
            ~max:200_000_000;
      }
  | "verify" ->
    J_verify
      {
        arch = p_arch params;
        config = small_config params;
        cycles = p_int params "cycles" ~default:1000 ~min:1 ~max:1_000_000;
        kind = p_engine params;
      }
  | "fuzz" ->
    J_fuzz
      {
        seed = p_int params "seed" ~default:1 ~min:0 ~max:max_int;
        budget = p_int params "budget" ~default:8 ~min:1 ~max:4096;
        cycles = p_int params "cycles" ~default:600 ~min:1 ~max:100_000;
        first_case = p_int params "first_case" ~default:0 ~min:0 ~max:max_int;
      }
  | "inject" ->
    J_inject
      {
        arch = p_arch params;
        config = small_config params;
        seed = p_int params "seed" ~default:1 ~min:0 ~max:max_int;
        n = p_int params "n" ~default:8 ~min:1 ~max:4096;
        cycles = p_int params "cycles" ~default:120 ~min:1 ~max:100_000;
        kind = p_engine params;
      }
  | "explore" -> (
    let text =
      match p_string_opt params "profile" with
      | None -> bad "missing \"profile\" (the profile file text)"
      | Some t -> t
    in
    match Xp.parse text with
    | Error msg -> bad "profile: %s" msg
    | Ok p ->
      (* Admission bounds: an accepted exploration is bounded work (the
         supervisor's deadline remains the backstop). *)
      let n = Xp.n_candidates p in
      if n > 256 then bad "profile grid has %d candidates (serve cap 256)" n;
      if p.Xp.transactions > 5000 then
        bad "transactions = %d over the serve cap 5000" p.Xp.transactions;
      if p.Xp.faults > 64 then
        bad "faults = %d over the serve cap 64" p.Xp.faults;
      J_explore { profile = p; kind = p_engine params })
  | ("sleep" | "spin" | "crash" | "fail") as kind when not allow_debug ->
    bad "debug kind %S requires the server to run with --debug-kinds" kind
  | "sleep" -> J_sleep (p_int params "ms" ~default:100 ~min:0 ~max:600_000)
  | "spin" -> J_spin
  | "crash" ->
    let s =
      match p_string_opt params "signal" with
      | None | Some "KILL" -> Sys.sigkill
      | Some "ABRT" -> Sys.sigabrt
      | Some "TERM" -> Sys.sigterm
      | Some "SEGV" -> Sys.sigsegv
      | Some s -> bad "unknown signal %S (expected KILL, ABRT, TERM, SEGV)" s
    in
    J_crash s
  | "fail" -> (
    match p_string_opt params "error" with
    | None -> J_fail "deterministic failure (debug kind)"
    | Some e -> J_fail e)
  | kind ->
    bad "unknown kind %S (expected %s)" kind (String.concat ", " job_kinds)

let validate ~allow_debug rq =
  match parse_job ~allow_debug rq with
  | (_ : job) -> Ok ()
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let warm rq =
  match parse_job ~allow_debug:true rq with
  | J_generate { arch; config; _ }
  | J_verify { arch; config; _ }
  | J_inject { arch; config; _ } -> (
    try ignore (Cache.circuit arch config) with _ -> ())
  | J_explore { profile; _ } -> (
    (* Warm the first candidate's circuit; the worker reuses the LRU
       for the whole grid. *)
    match X.candidates profile with
    | [||] -> ()
    | cands -> (
      let c = cands.(0) in
      try ignore (Cache.circuit c.X.ca_arch (X.config_of profile c))
      with _ -> ()))
  | J_simulate _ | J_fuzz _ | J_sleep _ | J_spin | J_crash _ | J_fail _ -> ()
  | exception _ -> ()

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let generate_result ~emit_verilog (r : G.t) =
  let base =
    [
      ("kind", Json.String "generate");
      ("arch", Json.String (G.arch_name r.G.arch));
      ("design_hash", Json.String (G.design_hash r.G.arch r.G.config));
      ("gate_count", Json.Int r.G.gate_count);
      ("register_bits", Json.Int r.G.register_bits);
      ("memory_bits", Json.Int r.G.memory_bits);
      ("module_count", Json.Int r.G.module_count);
      ("depth_levels", Json.Int r.G.depth_levels);
    ]
  in
  Json.Obj
    (if emit_verilog then base @ [ ("verilog", Json.String (G.verilog r)) ]
     else base)

let simulate_result arch workload max_cycles =
  let module M = Busgen_sim.Machine in
  let common name cycles extra =
    Json.Obj
      ([
         ("kind", Json.String "simulate");
         ("arch", Json.String (G.arch_name arch));
         ("workload", Json.String name);
         ("cycles", Json.Int cycles);
       ]
      @ extra)
  in
  match workload with
  | W_ofdm_ppa | W_ofdm_fpa ->
    let style =
      match workload with
      | W_ofdm_ppa -> Busgen_apps.Ofdm.Ppa
      | _ -> Busgen_apps.Ofdm.Fpa
    in
    let r = Busgen_apps.Ofdm.run ~max_cycles arch style in
    common (workload_name workload) r.Busgen_apps.Ofdm.stats.M.cycles
      [
        ("packets", Json.Int r.Busgen_apps.Ofdm.packets);
        ("throughput_mbps", Json.Float r.Busgen_apps.Ofdm.throughput_mbps);
      ]
  | W_mpeg2 ->
    let r = Busgen_apps.Mpeg2.run ~max_cycles arch in
    common "mpeg2" r.Busgen_apps.Mpeg2.stats.M.cycles
      [
        ("gops", Json.Int r.Busgen_apps.Mpeg2.gops);
        ("throughput_mbps", Json.Float r.Busgen_apps.Mpeg2.throughput_mbps);
      ]
  | W_database ->
    let r = Busgen_apps.Database.run ~max_cycles arch in
    common "database" r.Busgen_apps.Database.stats.M.cycles
      [
        ("tasks", Json.Int r.Busgen_apps.Database.tasks);
        ( "execution_time_ns",
          Json.Float r.Busgen_apps.Database.execution_time_ns );
      ]

let verify_result arch config cycles kind =
  let r = Cache.circuit arch config in
  let top = r.G.generated.A.top in
  let hash = G.design_hash arch config in
  let e = Cache.engine ~kind ~hash ~top in
  let tb = Tb.of_engine e in
  let mon = V_pack.attach e top in
  let stats = V_traffic.drive tb ~arch ~config ~seed:42 ~min_cycles:cycles in
  let violations = V_prop.violations mon in
  (* Leave the engine observer-free for its next checkout. *)
  E.clear_observers e;
  Json.Obj
    [
      ("kind", Json.String "verify");
      ("arch", Json.String (G.arch_name arch));
      ("cycles", Json.Int stats.V_traffic.cycles);
      ("transactions", Json.Int stats.V_traffic.transactions);
      ("properties", Json.Int (V_prop.property_count mon));
      ("mismatches", Json.Int stats.V_traffic.mismatches);
      ("violations", Json.Int (List.length violations));
      ( "violation_names",
        Json.List
          (List.map (fun v -> Json.String v.V_prop.v_prop) violations) );
      ( "clean",
        Json.Bool (violations = [] && stats.V_traffic.mismatches = 0) );
    ]

let fuzz_result seed budget cycles first_case =
  let report = V_fuzz.run ~cycles ~first_case ~jobs:1 ~seed ~budget () in
  let count pred = List.length (List.filter pred report.V_fuzz.f_results) in
  Json.Obj
    [
      ("kind", Json.String "fuzz");
      ("seed", Json.Int seed);
      ("budget", Json.Int budget);
      ("first_case", Json.Int first_case);
      ( "faulted",
        Json.Int (count (fun r -> V_fuzz.faulted r.V_fuzz.r_scenario)) );
      ( "clean",
        Json.Int (count (fun r -> r.V_fuzz.r_outcome = V_fuzz.Clean)) );
      ( "generation_errors",
        Json.Int
          (count (fun r ->
               match r.V_fuzz.r_outcome with
               | V_fuzz.Generation_error _ -> true
               | _ -> false)) );
      ( "failures",
        Json.List
          (List.map
             (fun (r : V_fuzz.result) ->
               Json.Obj
                 [
                   ( "class",
                     Json.String (V_fuzz.outcome_class r.V_fuzz.r_outcome) );
                   ("seed", Json.Int r.V_fuzz.r_scenario.V_fuzz.sc_seed);
                 ])
             report.V_fuzz.f_failures) );
      ("casualties", Json.Int (List.length report.V_fuzz.f_casualties));
    ]

(* The CLI inject campaign, run serially against one checked-out
   engine: golden run first, then each injection against the same
   stimulus schedule, classified into the protection quadrants. *)
let inject_result arch config seed n cycles kind =
  let r = Cache.circuit arch config in
  let top = r.G.generated.A.top in
  let hash = G.design_hash arch config in
  let sim = Cache.engine ~kind ~hash ~top in
  let inputs = C.inputs top in
  let outputs = List.map (fun (p : C.port) -> p.C.port_name) (C.outputs top) in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  let watch =
    List.filter
      (fun s ->
        contains s "parity_error" || contains s "bus_timeout"
        || contains s "par_err" || contains s "wd_to")
      (E.signal_names sim)
  in
  let observed = outputs @ watch in
  let n_out = List.length outputs in
  let lcg = ref ((seed lxor 0x5EED) land 0x3FFFFFFF) in
  let next () =
    lcg := ((!lcg * 1664525) + 1013904223) land 0x3FFFFFFF;
    !lcg
  in
  let schedule =
    Array.init cycles (fun _ ->
        List.map
          (fun (p : C.port) ->
            (p.C.port_name, B.init p.C.port_width (fun _ -> next () land 1 = 1)))
          inputs)
  in
  let run_once () =
    E.reset sim;
    Array.map
      (fun ins ->
        List.iter (fun (nm, v) -> E.set_input sim nm v) ins;
        E.step sim;
        List.map (fun s -> E.peek sim s) observed)
      schedule
  in
  let golden = run_once () in
  let campaign = E.random_campaign sim ~seed ~n ~horizon:cycles in
  let detected_corrupt = ref 0
  and silent_corrupt = ref 0
  and detected_masked = ref 0
  and masked = ref 0 in
  List.iter
    (fun inj ->
      E.clear_injections sim;
      E.inject sim [ inj ];
      let faulty = run_once () in
      let corrupt = ref false and flagged = ref false in
      Array.iteri
        (fun cy vals ->
          List.iteri
            (fun i f ->
              if not (B.equal f (List.nth golden.(cy) i)) then
                if i < n_out then corrupt := true else flagged := true)
            vals)
        faulty;
      incr
        (match (!corrupt, !flagged) with
        | true, true -> detected_corrupt
        | true, false -> silent_corrupt
        | false, true -> detected_masked
        | false, false -> masked))
    campaign;
  E.clear_injections sim;
  Json.Obj
    [
      ("kind", Json.String "inject");
      ("arch", Json.String (G.arch_name arch));
      ("seed", Json.Int seed);
      ("n", Json.Int (List.length campaign));
      ("cycles", Json.Int cycles);
      ("protected", Json.Bool (watch <> []));
      ("corrupted_flagged", Json.Int !detected_corrupt);
      ("corrupted_unflagged", Json.Int !silent_corrupt);
      ("masked_flagged", Json.Int !detected_masked);
      ("masked", Json.Int !masked);
    ]

(* Serial exploration against the memoizing circuit cache: jobs = 1
   with no deadline runs inline in this worker (no nested domains), and
   the reply is the canonical front — a pure function of the profile,
   so journal replay after a daemon restart is byte-identical. *)
let explore_result profile kind =
  let report = X.run ~engine:kind ~generate:Cache.circuit ~jobs:1 profile in
  match X.front_json report with
  | Json.Obj fields -> Json.Obj (("kind", Json.String "explore") :: fields)
  | j -> j

let run (rq : Proto.request) =
  let before = Cache.snapshot () in
  let reply =
    match
      match parse_job ~allow_debug:true rq with
      | J_generate { arch; config; emit_verilog } ->
        generate_result ~emit_verilog (Cache.circuit arch config)
      | J_simulate { arch; workload; max_cycles } ->
        simulate_result arch workload max_cycles
      | J_verify { arch; config; cycles; kind } ->
        verify_result arch config cycles kind
      | J_fuzz { seed; budget; cycles; first_case } ->
        fuzz_result seed budget cycles first_case
      | J_inject { arch; config; seed; n; cycles; kind } ->
        inject_result arch config seed n cycles kind
      | J_explore { profile; kind } -> explore_result profile kind
      | J_sleep ms ->
        Unix.sleepf (float_of_int ms /. 1000.);
        Json.Obj [ ("kind", Json.String "sleep"); ("slept_ms", Json.Int ms) ]
      | J_spin ->
        while true do
          ignore (Sys.opaque_identity 0)
        done;
        assert false
      | J_crash signal ->
        Unix.kill (Unix.getpid ()) signal;
        (* SIGKILL/SIGSEGV never return; give stragglers a beat. *)
        Unix.sleepf 1.0;
        Json.Null
      | J_fail msg -> failwith msg
    with
    | result -> Proto.ok_reply ~id:rq.Proto.rq_id result
    | exception Failure msg ->
      Proto.err_reply ~id:rq.Proto.rq_id ~code:Proto.code_crashed msg
    | exception Invalid_argument msg ->
      Proto.err_reply ~id:rq.Proto.rq_id ~code:Proto.code_crashed msg
    | exception Tb.Timeout msg ->
      Proto.err_reply ~id:rq.Proto.rq_id ~code:Proto.code_crashed
        ("bus timeout: " ^ msg)
  in
  (reply, Cache.sub (Cache.snapshot ()) before)

let encode_result (reply, snap) =
  let w = Io.writer () in
  Io.w_string w reply;
  Cache.encode w snap;
  Io.contents w

let decode_result s =
  let r = Io.reader s in
  let reply = Io.r_string r in
  let snap = Cache.decode r in
  (reply, snap)
