(** The daemon's design-keyed memo caches (two {!Busgen_cache.Lru}
    instances):

    - {b circuits}: [design_hash -> Generate.t] — the generated system
      with its metrics.  Lives in the supervising parent (warmed at
      admission) and is inherited copy-on-write by forked procpool
      workers, so a batch's workers start hot.
    - {b tapes}: [design_hash:engine-kind -> Engine.t] — compiled
      evaluation engines, rebuilt per worker (engines are mutable
      simulation state and never cross the fork back).  {!engine}
      hands out a checked-out engine restored to the exact state a
      fresh [Testbench.create] would produce (observers and injections
      cleared, registers and memories reset, inputs zeroed, settled) —
      the chaos byte-identity test leans on this equivalence.

    Hit/miss/eviction counters travel from worker children back to the
    parent as {!snap} deltas piggybacked on each job result, so the
    [stats] reply aggregates the whole fleet. *)

type snap = {
  sn_circuits : Busgen_cache.Lru.stats;
  sn_tapes : Busgen_cache.Lru.stats;
}

val configure : ?circuit_cap:int -> ?tape_cap:int -> unit -> unit
(** Rebound the caches (defaults 64 circuits, 8 tapes).  Raises
    [Invalid_argument] on caps [< 1]. *)

val circuit : Bussyn.Generate.arch -> Bussyn.Archs.config -> Bussyn.Generate.t
(** Memoized {!Bussyn.Generate.generate}, keyed by
    {!Bussyn.Generate.design_hash}. *)

val engine :
  kind:Busgen_rtl.Engine.kind ->
  hash:string ->
  top:Busgen_rtl.Circuit.t ->
  Busgen_rtl.Engine.t
(** Memoized compiled engine for [top], keyed by [hash ^ kind]; checked
    out as described above.  The caller owns it until the next
    {!engine} call for the same key (the daemon's executors are
    strictly sequential within a worker). *)

val snapshot : unit -> snap
(** Current counters of this process's caches. *)

val sub : snap -> snap -> snap
(** [sub after before]: counter-wise difference (sizes/caps kept from
    [after]) — a job's delta. *)

val add : snap -> snap -> snap
(** Counter-wise sum (sizes/caps kept from the first) — fleet
    aggregation. *)

val zero : snap

val encode : Busgen_binio.Io.writer -> snap -> unit
val decode : Busgen_binio.Io.reader -> snap
