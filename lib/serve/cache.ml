module Lru = Busgen_cache.Lru
module G = Bussyn.Generate
module E = Busgen_rtl.Engine
module C = Busgen_rtl.Circuit
module B = Busgen_rtl.Bits
module Io = Busgen_binio.Io

type snap = { sn_circuits : Lru.stats; sn_tapes : Lru.stats }

let circuits : (string, G.t) Lru.t ref = ref (Lru.create ~cap:64 ())
let tapes : (string, E.t) Lru.t ref = ref (Lru.create ~cap:8 ())

let configure ?circuit_cap ?tape_cap () =
  Option.iter (fun cap -> Lru.resize !circuits ~cap) circuit_cap;
  Option.iter (fun cap -> Lru.resize !tapes ~cap) tape_cap

let circuit arch config =
  let key = G.design_hash arch config in
  Lru.find_or_add !circuits key (fun () -> G.generate arch config)

(* Checkout: make a cached (possibly dirty) engine indistinguishable
   from the one Testbench.create would build fresh — same observer set
   (none), same injections (none), same register/memory state (reset),
   same input values (zero), settled. *)
let checkout e top =
  E.clear_observers e;
  E.clear_injections e;
  E.reset e;
  List.iter
    (fun (p : C.port) -> E.set_input e p.C.port_name (B.zero p.C.port_width))
    (C.inputs top);
  E.settle e;
  e

let engine ~kind ~hash ~top =
  let key = hash ^ ":" ^ E.kind_to_string kind in
  let e = Lru.find_or_add !tapes key (fun () -> E.create ~kind top) in
  checkout e top

let snapshot () =
  { sn_circuits = Lru.stats !circuits; sn_tapes = Lru.stats !tapes }

let map2 f (a : Lru.stats) (b : Lru.stats) : Lru.stats =
  {
    a with
    Lru.st_hits = f a.Lru.st_hits b.Lru.st_hits;
    st_misses = f a.Lru.st_misses b.Lru.st_misses;
    st_evictions = f a.Lru.st_evictions b.Lru.st_evictions;
  }

let sub after before =
  {
    sn_circuits = map2 ( - ) after.sn_circuits before.sn_circuits;
    sn_tapes = map2 ( - ) after.sn_tapes before.sn_tapes;
  }

let add a b =
  {
    sn_circuits = map2 ( + ) a.sn_circuits b.sn_circuits;
    sn_tapes = map2 ( + ) a.sn_tapes b.sn_tapes;
  }

let zero_stats : Lru.stats =
  { Lru.st_size = 0; st_cap = 0; st_hits = 0; st_misses = 0; st_evictions = 0 }

let zero = { sn_circuits = zero_stats; sn_tapes = zero_stats }

let encode_stats w (s : Lru.stats) =
  Io.w_int w s.Lru.st_size;
  Io.w_int w s.Lru.st_cap;
  Io.w_int w s.Lru.st_hits;
  Io.w_int w s.Lru.st_misses;
  Io.w_int w s.Lru.st_evictions

let decode_stats r =
  let st_size = Io.r_int r in
  let st_cap = Io.r_int r in
  let st_hits = Io.r_int r in
  let st_misses = Io.r_int r in
  let st_evictions = Io.r_int r in
  { Lru.st_size; st_cap; st_hits; st_misses; st_evictions }

let encode w s =
  encode_stats w s.sn_circuits;
  encode_stats w s.sn_tapes

let decode r =
  let sn_circuits = decode_stats r in
  let sn_tapes = decode_stats r in
  { sn_circuits; sn_tapes }
