type request = {
  rq_id : string;
  rq_kind : string;
  rq_params : Json.t;
  rq_deadline_ms : int option;
}

let code_bad_request = "bad-request"
let code_duplicate_id = "duplicate-id"
let code_overloaded = "overloaded"
let code_expired = "expired"
let code_shutting_down = "shutting-down"
let code_crashed = "crashed"
let code_timed_out = "timed-out"
let code_quarantined = "quarantined"
let code_oversized = "oversized"

let max_id_len = 128

let id_ok id =
  String.length id > 0
  && String.length id <= max_id_len
  && String.for_all (fun c -> Char.code c >= 0x21 && Char.code c < 0x7F) id

let parse_request line =
  match Json.parse line with
  | Error e -> Error ("malformed JSON: " ^ e)
  | Ok (Json.Obj _ as obj) -> (
    match Json.member "id" obj with
    | None -> Error "missing \"id\""
    | Some idj -> (
      match Json.get_string idj with
      | None -> Error "\"id\" must be a string"
      | Some id when not (id_ok id) ->
        Error
          (Printf.sprintf
             "\"id\" must be 1..%d printable non-space bytes" max_id_len)
      | Some id -> (
        match Json.member "kind" obj with
        | None -> Error "missing \"kind\""
        | Some kj -> (
          match Json.get_string kj with
          | None | Some "" -> Error "\"kind\" must be a non-empty string"
          | Some kind -> (
            let params =
              match Json.member "params" obj with
              | None -> Ok (Json.Obj [])
              | Some (Json.Obj _ as p) -> Ok p
              | Some _ -> Error "\"params\" must be an object"
            in
            match params with
            | Error e -> Error e
            | Ok params -> (
              match Json.member "deadline_ms" obj with
              | None ->
                Ok
                  {
                    rq_id = id;
                    rq_kind = kind;
                    rq_params = params;
                    rq_deadline_ms = None;
                  }
              | Some dj -> (
                match Json.get_int dj with
                | Some d when d > 0 ->
                  Ok
                    {
                      rq_id = id;
                      rq_kind = kind;
                      rq_params = params;
                      rq_deadline_ms = Some d;
                    }
                | _ -> Error "\"deadline_ms\" must be a positive integer")))))))
  | Ok _ -> Error "request must be a JSON object"

let ok_reply ~id result =
  Json.to_string
    (Json.Obj [ ("id", Json.String id); ("ok", Json.Bool true); ("result", result) ])

let err_reply ?id ~code msg =
  let fields =
    (match id with Some id -> [ ("id", Json.String id) ] | None -> [])
    @ [
        ("ok", Json.Bool false);
        ("code", Json.String code);
        ("error", Json.String msg);
      ]
  in
  Json.to_string (Json.Obj fields)
