(** The BusSyn daemon: a single-process event loop serving the
    newline-delimited JSON protocol ({!Proto}) over a Unix socket or
    stdio, executing admitted jobs in supervised batches on the
    procpool process backend.

    Architecture (DESIGN.md §13): the loop alternates between an
    {e admission pump} (accept connections, read lines, answer
    [health]/[stats] and every rejection immediately, journal and
    enqueue valid jobs) and {e batch execution} of the queued jobs via
    {!Busgen_par.Supervise.run}.  While a batch runs, the pump rides
    the supervisor's [should_stop] poll (called every scheduler
    iteration, ≤ [sv_poll] apart), so admission, health replies and
    backpressure stay live during execution; the poll returns [true] —
    aborting the batch — only on the second signal.  The process never
    spawns a domain, preserving procpool's fork-safety requirement.

    Robustness properties and their mechanisms:
    - {b crash recovery}: every admission is journaled ({!Journal})
      before it is queued; on restart, accepted-but-unresolved jobs
      re-run exactly once in admission order.  Replies are
      deterministic ({!Exec}), so the recovered results are
      byte-identical to what an uninterrupted run would have sent.
    - {b containment}: jobs execute in forked workers; a crash, hang
      or rlimit trip costs that job only (reply [crashed]/[timed-out]/
      [quarantined] naming the signal), and the job is journaled as
      quarantined so a restart does not re-run poison.
    - {b backpressure}: a bounded unfinished-job count (queue depth),
      per-client in-flight caps and per-request queue deadlines; past
      any of them the client gets an immediate [overloaded]/[expired]
      error instead of unbounded queue growth.
    - {b graceful drain}: first SIGTERM/SIGINT (or stdio EOF, or a
      [drain] request) stops job admission, finishes the queue,
      fsyncs the journal and exits 0; a second signal SIGKILLs the
      workers and exits 130 with the journal still naming every
      unresolved job for the next run. *)

type transport = Stdio | Socket of string

type config = {
  cf_transport : transport;
  cf_journal : string option;  (** [None]: volatile queue (no recovery) *)
  cf_queue_depth : int;
  cf_client_inflight : int;
  cf_policy : Busgen_par.Supervise.policy;
  cf_jobs : int;
  cf_limits : Busgen_par.Procpool.config;
  cf_max_frame : int;  (** request-line byte cap *)
  cf_debug_kinds : bool;
  cf_circuit_cap : int;
  cf_tape_cap : int;
  cf_journal_max_bytes : int;  (** auto-compaction threshold *)
  cf_log : string -> unit;
}

val config :
  ?journal:string option ->
  ?queue_depth:int ->
  ?client_inflight:int ->
  ?policy:Busgen_par.Supervise.policy ->
  ?jobs:int ->
  ?limits:Busgen_par.Procpool.config ->
  ?max_frame:int ->
  ?debug_kinds:bool ->
  ?circuit_cap:int ->
  ?tape_cap:int ->
  ?journal_max_bytes:int ->
  ?log:(string -> unit) ->
  transport ->
  config
(** Defaults: journal [Some "serve-journal"], queue depth 256, client
    in-flight 64, default supervise policy with a 30 s deadline and
    1 retry, jobs = available cores, 1 MiB frames, debug kinds off,
    64-circuit / 8-tape caches, 256 MiB compaction threshold, log to
    stderr.  Raises [Invalid_argument] on non-positive bounds. *)

val run : config -> int
(** Serve until drained (0) or hard-interrupted (130).  Installs the
    {!Busgen_par.Intr} handlers. *)

(** {2 Client-side helpers (the CLI's [--ping] / [--send])} *)

val ping : socket:string -> (string, string) result
(** Connect, send a [health] request, return the raw reply line. *)

val send_file :
  ?timeout:float -> socket:string -> path:string -> unit -> (int, string) result
(** Send every line of [path] (["-"] = stdin) as a request and print
    each reply line to stdout as it arrives; returns the reply count.
    [timeout] (default 120 s) bounds the wait for {e each} reply. *)

(** {2 Journal inspection (the CLI's [--dump-journal] / [--dump-replies])} *)

val dump_journal : dir:string -> (unit, string) result
(** Print every journal record as one JSON line
    ([{"record":"accept"|"done"|"quarantine",...}]) plus a trailing
    summary line with corrupt/torn counts. *)

val dump_replies : dir:string -> (unit, string) result
(** Print the reply line of every resolved-with-reply job, sorted by
    request id — the chaos test's byte-diff view. *)
