(** The architectural cycle simulator.

    Executes one {!Program.t} per PE against a transaction-level model of
    one of the seven bus architectures.  Buses are explicit resources:
    every shared-path access queues at its bus, waits for the grant
    (FCFS by default, matching the paper's global arbiter), holds the
    bus for the burst and releases it.  Private paths (a BFBA BAN's
    local SRAM, Bi-FIFO ports) cost latency but no contention.

    Compute phases generate background instruction-fetch traffic at the
    configured cache-miss rate over the PE's {e program memory} path —
    private for the custom architectures, the shared bus for GGBA/CCBA.
    This models the paper's observation (B) that buses holding program
    and local data in shared memory pay arbitration on every miss. *)

type arch = Bussyn.Generate.arch

type policy = Fcfs | Fixed_priority | Round_robin

type fault_config = {
  f_seed : int;          (** campaign seed; per-bus streams derive from it *)
  f_error_num : int;     (** per-grant error probability, over [f_den] *)
  f_timeout_num : int;   (** per-grant slave-timeout probability *)
  f_den : int;
  f_max_retries : int;   (** attempts before the PE is quarantined *)
  f_backoff_cycles : int;   (** first retry delay; doubles per attempt *)
  f_watchdog_cycles : int;  (** bus cycles lost to a timeout before the
                                watchdog forces release *)
}
(** Per-bus transaction fault model (the transaction-level view of the
    generated watchdog/parity hardware).  Every granted transaction
    draws from a deterministic per-bus LCG seeded by [f_seed] and the
    bus index: with probability [f_timeout_num/f_den] the slave times
    out (the bus is held [f_watchdog_cycles] extra cycles), else with
    probability [f_error_num/f_den] it error-responds.  Failed
    transactions never run their effect — no silent corruption — and the
    master retries with exponential backoff up to [f_max_retries] times
    before the arbiter quarantines it (its locks are released and the
    run continues degraded). *)

val fault_config :
  ?max_retries:int ->
  ?backoff_cycles:int ->
  ?watchdog_cycles:int ->
  seed:int ->
  rate:float ->
  unit ->
  fault_config
(** [fault_config ~seed ~rate ()] builds the standard campaign model:
    error probability [rate], timeout probability [rate/4], 8 retries,
    backoff starting at 8 cycles, 64-cycle watchdog.
    @raise Invalid_argument unless [0 <= rate <= 1]. *)

val fault_config_of_string : string -> (fault_config, string) result
(** Parse a ["SEED:RATE"] spec (e.g. ["42:0.001"]) into the standard
    campaign model.  Never raises; malformed specs explain the expected
    shape and the [\[0, 1\]] rate range in the error. *)

type config = {
  arch : arch;
  n_pes : int;
  timing : Timing.t;
  fifo_depth : int;           (** Bi-FIFO capacity in words *)
  policy : policy;            (** shared-bus arbitration *)
  n_subsystems : int;
      (** SplitBA: how many bus subsystems the PEs are split across
          (PE [k] lives in subsystem [k / (n_pes / n_subsystems)];
          ignored by other architectures) *)
  l1 : Cache.config option;
      (** [None] (default): cache misses follow the rational
          [Timing.miss_rate_num/den].  [Some cfg]: each PE simulates a
          real L1 of that shape over a deterministic
          sequential-with-jumps instruction stream, and every actual
          miss becomes a line fetch on the program-memory path —
          slower, but the miss rate emerges from the cache instead of
          being a constant. *)
  var_home : string -> int;
      (** SplitBA: which subsystem's memory holds a named control
          variable or lock (ignored by other architectures) *)
  initial_flags : (Program.flag * bool) list;
  trace : bool;               (** record every transaction (see {!stats.trace}) *)
  faults : fault_config option;
      (** [None] (default): fault-free, bit-identical to the engine
          without the fault model.  [Some fc]: inject bus faults per
          [fc] and report {!stats.reliability}. *)
}

val default_config : arch -> n_pes:int -> config
(** FCFS, paper timing ({!Timing.generated}, or {!Timing.ccba} for
    CCBA), depth-1024 FIFOs, BFBA-style [DONE_OP=1] initialisation on
    architectures with handshake register blocks. *)

type reliability = {
  r_errors : int;       (** bus error responses drawn *)
  r_timeouts : int;     (** slave timeouts (watchdog releases) drawn *)
  r_retries : int;      (** retry transactions issued *)
  r_recovered : int;    (** transactions that succeeded after retrying *)
  r_unrecovered : int;  (** transactions that exhausted their retries *)
  r_quarantined : int list;  (** PEs halted by the arbiter, in order *)
}
(** Outcome of a faulty run.  [r_unrecovered = 0] means every
    transaction eventually completed correctly; otherwise the run is
    degraded and [r_quarantined] names the halted PEs. *)

type stats = {
  cycles : int;               (** total simulated cycles *)
  pe_busy : int array;        (** compute cycles per PE *)
  pe_wait : int array;        (** cycles blocked on buses/flags/FIFOs *)
  bus_busy : (string * int) list;  (** occupancy per bus resource *)
  transactions : int;
  words_transferred : int;
  polls : int;                (** handshake/lock poll transactions *)
  marks : (string * int) list;
      (** [Mark] labels with the cycle they executed at, in time order *)
  trace : txn_record list;
      (** per-transaction records in completion order, when
          [config.trace] is set; empty otherwise *)
  reliability : reliability option;
      (** [Some _] exactly when [config.faults] is set *)
}

and txn_record = {
  tr_pe : int;
  tr_kind : string;  (** [read], [write], [flag], [lock], [miss], [fifo] *)
  tr_label : string option;
      (** the lock name for [lock] transactions; [None] otherwise *)
  tr_resource : string option;  (** bus name, or [None] for private paths *)
  tr_submit : int;   (** cycle the request was issued *)
  tr_grant : int;    (** cycle the bus granted it (= submit when private) *)
  tr_finish : int;
  tr_words : int;
}

val pp_stats : Format.formatter -> stats -> unit

exception Invalid_program of string
(** Raised when a program uses an operation the architecture cannot
    perform (e.g. [Loc_global] on BFBA), naming the PE and operation. *)

exception Deadlock of string
(** Raised when no PE can make progress before [max_cycles].  The
    message names every non-halted PE with its program position (ops
    fetched) and phase, e.g. ["pe1 at op #12, queued on a bus"]. *)

val run : ?max_cycles:int -> config -> Program.t array -> stats
(** Run until every PE halts.  [max_cycles] (default 200 million) guards
    against livelock.

    With [config.faults] set, a run whose unrecovered-failure count is
    non-zero never raises [Deadlock]: quarantined PEs may leave peers
    legitimately wedged, so the run stops and reports through
    {!stats.reliability} instead.
    @raise Invalid_program / [Deadlock] as above; [Invalid_argument] if
    the program count differs from [n_pes] or the same (stateful)
    program generator appears under two PEs. *)

(** {1 Resumable sessions}

    {!run} as a stepped session, for supervised long runs: a checkpoint
    supervisor advances the engine in bounded slices, observes
    {!progress} between slices, and stops/restarts at will.  Per-PE
    phases carry program closures, so a session is {e not} restored by
    copying state — restore is deterministic replay of the same config
    and programs to the recorded cycle, validated by comparing
    {!progress} digests.  [run c ps] is exactly [start c ps] advanced to
    completion. *)

type session

val start : ?max_cycles:int -> config -> Program.t array -> session
(** Build the engine without running it.  Same validation and
    [max_cycles] default as {!run}. *)

val advance : session -> cycles:int -> [ `Running | `Done of stats ]
(** Simulate at most [cycles] more cycles.  [`Done] is returned exactly
    once the run ends (all PEs halted, degraded stop, or the
    [max_cycles] guard) and is then returned again by every later call.
    @raise Deadlock / [Invalid_program] with the same semantics as
    {!run} (a deadlock surfaces on the [advance] call that hits it). *)

val finished : session -> bool

type progress = {
  pr_cycle : int;             (** cycles simulated so far *)
  pr_halted : int;            (** PEs halted so far *)
  pr_ops_done : int array;    (** program position per PE *)
  pr_phases : string array;   (** human-readable phase per PE *)
  pr_transactions : int;
  pr_words : int;
  pr_digest : int;
      (** order-independent hash of the full serializable engine state
          (phases, queues, flags, locks, RNGs, counters): two sessions
          with equal digests at the same cycle are in the same state *)
}

val progress : session -> progress

val ns_per_cycle : float
(** 10.0 — the paper's 100 MHz SYSCLK. *)

val throughput_mbps : bits:int -> cycles:int -> float
(** Application throughput at 100 MHz, in Mbit/s.  Total: a run with
    [cycles <= 0] (nothing executed, or every PE quarantined before
    the first grant) reports [0.0], never inf/NaN. *)
