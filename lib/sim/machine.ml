type arch = Bussyn.Generate.arch

type policy = Fcfs | Fixed_priority | Round_robin

(* Per-bus fault model: every granted bus transaction draws from a
   per-bus LCG (seeded from [f_seed] and the bus index, so runs are
   reproducible) and fails with probability [f_error_num / f_den]
   (error response) or [f_timeout_num / f_den] (slave timeout: the bus
   is held for [f_watchdog_cycles] more cycles until the watchdog
   forces release).  Masters retry a failed transaction up to
   [f_max_retries] times with exponential backoff starting at
   [f_backoff_cycles]; a transaction that exhausts its retries is
   unrecoverable and its PE is quarantined by the arbiter. *)
type fault_config = {
  f_seed : int;
  f_error_num : int;
  f_timeout_num : int;
  f_den : int;
  f_max_retries : int;
  f_backoff_cycles : int;
  f_watchdog_cycles : int;
}

let fault_config ?(max_retries = 8) ?(backoff_cycles = 8)
    ?(watchdog_cycles = 64) ~seed ~rate () =
  if rate < 0.0 || rate > 1.0 then
    Stdlib.invalid_arg "Machine.fault_config: rate must be within [0, 1]";
  let den = 1_000_000 in
  {
    f_seed = seed;
    f_error_num = int_of_float (rate *. float_of_int den);
    f_timeout_num = int_of_float (rate /. 4.0 *. float_of_int den);
    f_den = den;
    f_max_retries = max_retries;
    f_backoff_cycles = backoff_cycles;
    f_watchdog_cycles = watchdog_cycles;
  }

let fault_config_of_string s =
  match String.index_opt s ':' with
  | None ->
      Error
        (Printf.sprintf "bad fault spec %S: expected SEED:RATE (e.g. 42:0.001)"
           s)
  | Some i -> (
      let seed = int_of_string_opt (String.sub s 0 i) in
      let rate =
        float_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      in
      match (seed, rate) with
      | Some seed, Some rate when rate >= 0.0 && rate <= 1.0 ->
          Ok (fault_config ~seed ~rate ())
      | Some _, Some _ ->
          Error
            (Printf.sprintf "bad fault spec %S: RATE must be within [0, 1]" s)
      | _ ->
          Error
            (Printf.sprintf
               "bad fault spec %S: expected an integer SEED and a float RATE \
                (e.g. 42:0.001)"
               s))

type config = {
  arch : arch;
  n_pes : int;
  timing : Timing.t;
  fifo_depth : int;
  policy : policy;
  n_subsystems : int;
  l1 : Cache.config option;
  var_home : string -> int;
  initial_flags : (Program.flag * bool) list;
  trace : bool;
  faults : fault_config option;
}

let default_config arch ~n_pes =
  let timing =
    match arch with
    | Bussyn.Generate.Ccba -> Timing.ccba
    | Bussyn.Generate.Bfba | Bussyn.Generate.Gbavi | Bussyn.Generate.Gbavii
    | Bussyn.Generate.Gbaviii | Bussyn.Generate.Hybrid
    | Bussyn.Generate.Splitba | Bussyn.Generate.Ggba ->
        Timing.generated
  in
  let initial_flags =
    match arch with
    | Bussyn.Generate.Bfba | Bussyn.Generate.Hybrid ->
        (* Paper Example 4: DONE_OP starts at 1 in BFBA-style blocks. *)
        List.init n_pes (fun k -> (Program.Hs_flag (k, "done_op"), true))
    | Bussyn.Generate.Gbavi | Bussyn.Generate.Gbavii
    | Bussyn.Generate.Gbaviii | Bussyn.Generate.Splitba
    | Bussyn.Generate.Ggba | Bussyn.Generate.Ccba ->
        []
  in
  {
    arch;
    n_pes;
    timing;
    fifo_depth = 1024;
    policy = Fcfs;
    n_subsystems = 2;
    l1 = None;
    var_home = (fun _ -> 0);
    initial_flags;
    trace = false;
    faults = None;
  }

(* Reliability outcome of a faulty run.  [r_unrecovered = 0] means every
   transaction eventually completed correctly (possibly after retries);
   otherwise the PEs in [r_quarantined] were halted by the arbiter after
   exhausting their retries and the run is degraded. *)
type reliability = {
  r_errors : int;
  r_timeouts : int;
  r_retries : int;
  r_recovered : int;
  r_unrecovered : int;
  r_quarantined : int list;
}

type stats = {
  cycles : int;
  pe_busy : int array;
  pe_wait : int array;
  bus_busy : (string * int) list;
  transactions : int;
  words_transferred : int;
  polls : int;
  marks : (string * int) list;
  trace : txn_record list;
  reliability : reliability option;
}

and txn_record = {
  tr_pe : int;
  tr_kind : string;
  tr_label : string option;
  tr_resource : string option;
  tr_submit : int;
  tr_grant : int;
  tr_finish : int;
  tr_words : int;
}

let pp_stats fmt s =
  Format.fprintf fmt "@[<v>cycles: %d@,txns: %d, words: %d, polls: %d@,"
    s.cycles s.transactions s.words_transferred s.polls;
  Array.iteri
    (fun i busy ->
      Format.fprintf fmt "pe%d: busy %d, wait %d@," i busy s.pe_wait.(i))
    s.pe_busy;
  List.iter
    (fun (name, busy) -> Format.fprintf fmt "bus %s: busy %d@," name busy)
    s.bus_busy;
  (match s.reliability with
  | None -> ()
  | Some r ->
      Format.fprintf fmt
        "faults: %d errors, %d timeouts, %d retries, %d recovered, %d \
         unrecovered@,"
        r.r_errors r.r_timeouts r.r_retries r.r_recovered r.r_unrecovered;
      if r.r_quarantined <> [] then
        Format.fprintf fmt "quarantined PEs: %s@,"
          (String.concat ", " (List.map string_of_int r.r_quarantined)));
  Format.fprintf fmt "@]"

exception Invalid_program of string
exception Deadlock of string

let ns_per_cycle = 10.0

let throughput_mbps ~bits ~cycles =
  (* bits / (cycles * 10ns) in Mbit/s = bits * 100 / cycles.  A run
     that never advanced the clock (0 transactions, or everything
     quarantined before the first grant) reports 0, not inf/NaN:
     scoring code consumes this value and must stay total. *)
  if cycles <= 0 then 0.0
  else float_of_int bits *. 100.0 /. float_of_int cycles

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

type resource = Seg of int | Global | Ss of int

let resource_name = function
  | Seg k -> Printf.sprintf "seg%d" k
  | Global -> "global"
  | Ss k -> Printf.sprintf "ss%d" k

type path = { res : resource option; grant : int; fixed : int; per_word : int }

let invalid pe fmt =
  Printf.ksprintf (fun s -> raise (Invalid_program (Printf.sprintf "pe%d: %s" pe s))) fmt

let subsystem_of c pe =
  let n_ss = max 1 c.n_subsystems in
  min (n_ss - 1) (pe / max 1 (c.n_pes / n_ss))

let private_path t = { res = None; grant = 0; fixed = t.Timing.mem_cycles; per_word = t.Timing.word_cycles }

let seg_path t k =
  { res = Some (Seg k); grant = 1; fixed = t.Timing.mem_cycles;
    per_word = t.Timing.word_cycles }

let global_path t =
  { res = Some Global; grant = t.Timing.arb_cycles; fixed = t.Timing.mem_cycles;
    per_word = t.Timing.word_cycles }

let ss_path t k =
  { res = Some (Ss k); grant = t.Timing.arb_cycles; fixed = t.Timing.mem_cycles;
    per_word = t.Timing.word_cycles }

let mem_path c pe (loc : Program.location) =
  let t = c.timing in
  match (c.arch, loc) with
  | Bussyn.Generate.Bfba, Program.Loc_local -> private_path t
  | Bussyn.Generate.Bfba, (Program.Loc_peer_mem _ | Program.Loc_global) ->
      invalid pe "BFBA has no shared or peer-accessible memory"
  | Bussyn.Generate.Gbavi, Program.Loc_local -> seg_path t pe
  | Bussyn.Generate.Gbavi, Program.Loc_peer_mem k ->
      if k = pe then seg_path t pe
      else
        (* Crossing the registered bus bridge costs extra cycles on every
           beat (the bridge re-presents each transfer to the far
           segment), as in the generated RTL. *)
        {
          (seg_path t k) with
          fixed = t.Timing.mem_cycles + t.Timing.bridge_cycles;
          per_word = t.Timing.word_cycles + t.Timing.bridge_cycles;
        }
  | Bussyn.Generate.Gbavi, Program.Loc_global ->
      invalid pe "GBAVI has no global memory"
  | Bussyn.Generate.Gbavii, Program.Loc_local -> seg_path t pe
  | Bussyn.Generate.Gbavii, Program.Loc_peer_mem k ->
      if k = pe then seg_path t pe
      else
        {
          (seg_path t k) with
          fixed = t.Timing.mem_cycles + t.Timing.bridge_cycles;
          per_word = t.Timing.word_cycles + t.Timing.bridge_cycles;
        }
  | Bussyn.Generate.Gbavii, Program.Loc_global -> global_path t
  | (Bussyn.Generate.Gbaviii | Bussyn.Generate.Hybrid), Program.Loc_local ->
      private_path t
  | (Bussyn.Generate.Gbaviii | Bussyn.Generate.Hybrid), Program.Loc_global ->
      global_path t
  | (Bussyn.Generate.Gbaviii | Bussyn.Generate.Hybrid), Program.Loc_peer_mem _
    ->
      invalid pe "no direct peer-memory window in this architecture"
  | Bussyn.Generate.Splitba, (Program.Loc_local | Program.Loc_global) ->
      (* A SplitBA BAN's program and data live in its subsystem's shared
         memory (Fig. 7). *)
      ss_path t (subsystem_of c pe)
  | Bussyn.Generate.Splitba, Program.Loc_peer_mem k ->
      let target = subsystem_of c k in
      if target = subsystem_of c pe then ss_path t target
      else
        {
          (ss_path t target) with
          fixed =
            t.Timing.mem_cycles + t.Timing.bridge_cycles + t.Timing.arb_cycles;
          per_word = t.Timing.word_cycles + t.Timing.bridge_cycles;
        }
  | (Bussyn.Generate.Ggba | Bussyn.Generate.Ccba),
    (Program.Loc_local | Program.Loc_peer_mem _ | Program.Loc_global) ->
      global_path t

let flag_path c pe (f : Program.flag) =
  let t = c.timing in
  match (c.arch, f) with
  | (Bussyn.Generate.Bfba | Bussyn.Generate.Hybrid), Program.Hs_flag _ ->
      (* Dedicated handshake register ports: latency, no contention. *)
      { res = None; grant = 0; fixed = t.Timing.mem_cycles + 1;
        per_word = t.Timing.word_cycles }
  | (Bussyn.Generate.Gbavi | Bussyn.Generate.Gbavii), Program.Hs_flag (k, _)
    ->
      seg_path t k
  | ( ( Bussyn.Generate.Gbavii | Bussyn.Generate.Gbaviii
      | Bussyn.Generate.Hybrid | Bussyn.Generate.Ggba | Bussyn.Generate.Ccba ),
      Program.Var_flag _ ) ->
      global_path t
  | Bussyn.Generate.Splitba, Program.Var_flag name ->
      ss_path t (c.var_home name)
  | ( ( Bussyn.Generate.Gbaviii | Bussyn.Generate.Ggba | Bussyn.Generate.Ccba
      | Bussyn.Generate.Splitba ),
      Program.Hs_flag _ ) ->
      invalid pe "no handshake register blocks in this architecture"
  | (Bussyn.Generate.Bfba | Bussyn.Generate.Gbavi), Program.Var_flag _ ->
      invalid pe "no shared-memory variables in this architecture"

let lock_path c pe name =
  match c.arch with
  | Bussyn.Generate.Gbavii | Bussyn.Generate.Gbaviii | Bussyn.Generate.Hybrid
  | Bussyn.Generate.Ggba | Bussyn.Generate.Ccba ->
      global_path c.timing
  | Bussyn.Generate.Splitba -> ss_path c.timing (c.var_home name)
  | Bussyn.Generate.Bfba | Bussyn.Generate.Gbavi ->
      invalid pe "locks need a shared memory"

(* Program (instruction) memory path for cache-miss traffic. *)
let miss_path c pe =
  let t = c.timing in
  match c.arch with
  | Bussyn.Generate.Ggba | Bussyn.Generate.Ccba -> global_path t
  | Bussyn.Generate.Splitba -> ss_path t (subsystem_of c pe)
  | Bussyn.Generate.Gbavi | Bussyn.Generate.Gbavii -> seg_path t pe
  | Bussyn.Generate.Bfba | Bussyn.Generate.Gbaviii | Bussyn.Generate.Hybrid ->
      (* Private local program memory: latency but no contention. *)
      private_path t

(* BFBA-style architectures have Bi-FIFO links; others do not. *)
let has_fifos = function
  | Bussyn.Generate.Bfba | Bussyn.Generate.Hybrid -> true
  | Bussyn.Generate.Gbavi | Bussyn.Generate.Gbavii | Bussyn.Generate.Gbaviii
  | Bussyn.Generate.Splitba | Bussyn.Generate.Ggba | Bussyn.Generate.Ccba ->
      false

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

type compute_state = { mutable cleft : int; mutable miss_acc : int }

type phase =
  | Fetch
  | Computing of compute_state
  | Queued
  | Local_transfer of { mutable left : int; effect : unit -> phase }
  | Sleeping of { mutable left : int; retry : Program.op }
  | Backoff of { mutable left : int; txn : txn }
    (* waiting out exponential backoff before resubmitting [txn] *)
  | Fifo_blocked of Program.op
  | Irq_wait
  | Halted

and txn = {
  t_pe : int;
  t_cycles : int;
  t_words : int;
  t_is_poll : bool;
  t_kind : string;
  t_label : string option;
  t_submit : int;
  t_attempts : int; (* failed bus attempts so far *)
  t_path : path;    (* kept so a failed transaction can be resubmitted *)
  t_effect : unit -> phase;
}

(* Outcome drawn for the bus's current transaction at grant time. *)
type fault_outcome = F_ok | F_error | F_timeout

type bus = {
  b_res : resource;
  mutable cur : txn option;
  mutable cur_left : int;
  mutable cur_grant : int;
  mutable waiting : txn list; (* arrival order *)
  mutable busy : int;
  mutable rr_last : int;
  mutable b_lcg : int;             (* per-bus fault-draw stream *)
  mutable b_fault : fault_outcome; (* fate of [cur] *)
}

(* Per-PE instruction-stream model for the optional real L1: mostly
   sequential with a jump every [l1_run] accesses (deterministic LCG,
   so runs are reproducible). *)
type l1_state = {
  cache : Cache.t;
  mutable pos : int;
  mutable lcg : int;
  mutable run_left : int;
}

let l1_footprint_words = 1 lsl 13
let l1_run = 256

(* Running reliability counters (only driven when [config.faults] is
   set; allocated unconditionally to keep the engine branch-free). *)
type rel = {
  mutable rl_errors : int;
  mutable rl_timeouts : int;
  mutable rl_retries : int;
  mutable rl_recovered : int;
  mutable rl_unrecovered : int;
  mutable rl_quarantined : int list; (* reverse order *)
}

type m = {
  c : config;
  programs : Program.t array;
  phase : phase array;
  buses : bus list;
  flags : (Program.flag, bool) Hashtbl.t;
  locks : (string, int) Hashtbl.t; (* name -> owner pe *)
  l1s : l1_state array;       (* empty unless [config.l1] is set *)
  fifo_count : int array;     (* inbound FIFO fill per PE *)
  fifo_thr : int array;
  mutable halted : int;
  mutable transactions : int;
  mutable words : int;
  mutable polls : int;
  pe_busy : int array;
  pe_wait : int array;
  ops_done : int array; (* ops fetched per PE, for stuck diagnostics *)
  rel : rel;
  mutable activity : bool;
  mutable m_marks : (string * int) list; (* reverse order *)
  mutable m_trace : txn_record list;     (* reverse order *)
  mutable now : int;
}

let find_bus m res = List.find (fun b -> b.b_res = res) m.buses

let record m ?resource (txn : txn) ~grant =
  if m.c.trace then
    m.m_trace <-
      {
        tr_pe = txn.t_pe;
        tr_kind = txn.t_kind;
        tr_label = txn.t_label;
        tr_resource = resource;
        tr_submit = txn.t_submit;
        tr_grant = grant;
        tr_finish = m.now;
        tr_words = txn.t_words;
      }
      :: m.m_trace

let submit m (path : path) txn =
  m.transactions <- m.transactions + 1;
  m.words <- m.words + txn.t_words;
  if txn.t_is_poll then m.polls <- m.polls + 1;
  let txn = { txn with t_submit = m.now } in
  match path.res with
  | None ->
      let effect () =
        record m txn ~grant:txn.t_submit;
        txn.t_effect ()
      in
      m.phase.(txn.t_pe) <-
        Local_transfer { left = txn.t_cycles; effect }
  | Some res ->
      let b = find_bus m res in
      b.waiting <- b.waiting @ [ txn ];
      m.phase.(txn.t_pe) <- Queued

let txn_of_path ~pe ~words ?(is_poll = false) ?(kind = "mem") ?label
    (path : path) effect =
  {
    t_pe = pe;
    t_cycles = path.grant + path.fixed + (words * path.per_word);
    t_words = words;
    t_is_poll = is_poll;
    t_kind = kind;
    t_label = label;
    t_submit = 0;
    t_attempts = 0;
    t_path = path;
    t_effect = effect;
  }

let flag_value m f =
  match Hashtbl.find_opt m.flags f with Some v -> v | None -> false

let rec exec_op m pe (op : Program.op) =
  let t = m.c.timing in
  match op with
  | Program.Halt ->
      m.phase.(pe) <- Halted;
      m.halted <- m.halted + 1
  | Program.Mark label ->
      m.m_marks <- (label, m.now) :: m.m_marks;
      fetch m pe
  | Program.Call f ->
      f ();
      fetch m pe
  | Program.Compute 0 -> m.phase.(pe) <- Fetch
  | Program.Compute n -> m.phase.(pe) <- Computing { cleft = n; miss_acc = 0 }
  | Program.Read (loc, words) | Program.Write (loc, words) ->
      if words < 1 then invalid pe "zero-length transfer";
      let path = mem_path m.c pe loc in
      let kind =
        match op with Program.Read _ -> "read" | _ -> "write"
      in
      submit m path (txn_of_path ~pe ~words ~kind path (fun () -> Fetch))
  | Program.Set_flag (f, v) ->
      let path = flag_path m.c pe f in
      submit m path
        (txn_of_path ~pe ~words:1 ~kind:"flag" path (fun () ->
             Hashtbl.replace m.flags f v;
             Fetch))
  | Program.Wait_flag (f, v) ->
      let path = flag_path m.c pe f in
      submit m path
        (txn_of_path ~pe ~words:1 ~is_poll:true ~kind:"flag" path (fun () ->
             if flag_value m f = v then Fetch
             else Sleeping { left = t.Timing.poll_interval; retry = op }))
  | Program.Lock_acquire name ->
      let path = lock_path m.c pe name in
      submit m path
        (txn_of_path ~pe ~words:1 ~is_poll:true ~kind:"lock" ~label:name path
           (fun () ->
             if Hashtbl.mem m.locks name then
               Sleeping { left = t.Timing.poll_interval; retry = op }
             else begin
               Hashtbl.replace m.locks name pe;
               Fetch
             end))
  | Program.Try_lock (name, cb) ->
      let path = lock_path m.c pe name in
      submit m path
        (txn_of_path ~pe ~words:1 ~is_poll:true ~kind:"lock" ~label:name path
           (fun () ->
             if Hashtbl.mem m.locks name then begin
               cb false;
               Fetch
             end
             else begin
               Hashtbl.replace m.locks name pe;
               cb true;
               Fetch
             end))
  | Program.Lock_release name ->
      let path = lock_path m.c pe name in
      submit m path
        (txn_of_path ~pe ~words:1 ~kind:"lock" ~label:name path (fun () ->
             (match Hashtbl.find_opt m.locks name with
             | Some owner when owner = pe -> Hashtbl.remove m.locks name
             | Some _ | None ->
                 invalid pe "released a lock it does not hold (%s)" name);
             Fetch))
  | Program.Fifo_set_threshold (dest, words) ->
      if not (has_fifos m.c.arch) then
        invalid pe "this architecture has no Bi-FIFOs";
      if dest < 0 || dest >= m.c.n_pes then invalid pe "bad FIFO target";
      m.phase.(pe) <-
        Local_transfer { left = t.Timing.mem_cycles + 1; effect = (fun () -> Fetch) };
      m.fifo_thr.(dest) <- words
  | Program.Fifo_push (dest, words) ->
      if not (has_fifos m.c.arch) then
        invalid pe "this architecture has no Bi-FIFOs";
      if dest < 0 || dest >= m.c.n_pes then invalid pe "bad FIFO target";
      if m.fifo_count.(dest) + words <= m.c.fifo_depth then begin
        m.words <- m.words + words;
        m.transactions <- m.transactions + 1;
        let submit_at = m.now in
        let effect () =
          if m.c.trace then
            m.m_trace <-
              { tr_pe = pe; tr_kind = "fifo"; tr_label = None; tr_resource = None;
                tr_submit = submit_at; tr_grant = submit_at;
                tr_finish = m.now; tr_words = words }
              :: m.m_trace;
          Fetch
        in
        m.phase.(pe) <-
          Local_transfer
            { left = 1 + (words * t.Timing.fifo_word_cycles); effect };
        m.fifo_count.(dest) <- m.fifo_count.(dest) + words
      end
      else m.phase.(pe) <- Fifo_blocked op
  | Program.Fifo_pop words ->
      if not (has_fifos m.c.arch) then
        invalid pe "this architecture has no Bi-FIFOs";
      if m.fifo_count.(pe) >= words then begin
        m.words <- m.words + words;
        m.transactions <- m.transactions + 1;
        let submit_at = m.now in
        let effect () =
          if m.c.trace then
            m.m_trace <-
              { tr_pe = pe; tr_kind = "fifo"; tr_label = None; tr_resource = None;
                tr_submit = submit_at; tr_grant = submit_at;
                tr_finish = m.now; tr_words = words }
              :: m.m_trace;
          Fetch
        in
        m.phase.(pe) <-
          Local_transfer
            { left = 1 + (words * t.Timing.fifo_word_cycles); effect };
        m.fifo_count.(pe) <- m.fifo_count.(pe) - words
      end
      else m.phase.(pe) <- Fifo_blocked op
  | Program.Wait_fifo_irq ->
      if not (has_fifos m.c.arch) then
        invalid pe "this architecture has no Bi-FIFOs";
      if m.fifo_thr.(pe) > 0 && m.fifo_count.(pe) >= m.fifo_thr.(pe) then
        m.phase.(pe) <- Fetch
      else m.phase.(pe) <- Irq_wait

and fetch m pe =
  match m.programs.(pe) () with
  | Some op ->
      m.activity <- true;
      m.ops_done.(pe) <- m.ops_done.(pe) + 1;
      exec_op m pe op
  | None ->
      m.activity <- true;
      m.phase.(pe) <- Halted;
      m.halted <- m.halted + 1

let grant_next m b =
  match b.waiting with
  | [] -> ()
  | waiting ->
      let pick =
        match m.c.policy with
        | Fcfs -> List.hd waiting
        | Fixed_priority ->
            List.fold_left
              (fun best t -> if t.t_pe < best.t_pe then t else best)
              (List.hd waiting) waiting
        | Round_robin ->
            let n = m.c.n_pes in
            let dist t = (t.t_pe - b.rr_last - 1 + (2 * n)) mod n in
            List.fold_left
              (fun best t -> if dist t < dist best then t else best)
              (List.hd waiting) waiting
      in
      b.waiting <- List.filter (fun t -> t != pick) b.waiting;
      b.rr_last <- pick.t_pe;
      b.cur <- Some pick;
      b.cur_left <- pick.t_cycles;
      b.cur_grant <- m.now;
      (match m.c.faults with
      | None -> ()
      | Some fc ->
          (* Both draws always advance the LCG so the per-bus stream
             stays aligned whatever the outcomes. *)
          let draw num =
            b.b_lcg <- ((b.b_lcg * 1664525) + 1013904223) land 0x3FFFFFFF;
            (* High bits: an LCG's low bits have short periods. *)
            num > 0 && b.b_lcg lsr 4 mod fc.f_den < num
          in
          let timeout = draw fc.f_timeout_num in
          let error = draw fc.f_error_num in
          if timeout then begin
            (* The slave never answers: the bus is held until the
               watchdog fires and forces release. *)
            b.b_fault <- F_timeout;
            b.cur_left <- b.cur_left + fc.f_watchdog_cycles
          end
          else if error then b.b_fault <- F_error
          else b.b_fault <- F_ok);
      m.activity <- true

(* The arbiter quarantines a PE whose transaction exhausted its
   retries: its locks are released so peers are not wedged forever, and
   the PE is halted in place.  The run continues degraded. *)
let quarantine m pe =
  let owned =
    Hashtbl.fold
      (fun name owner acc -> if owner = pe then name :: acc else acc)
      m.locks []
  in
  List.iter (Hashtbl.remove m.locks) owned;
  m.phase.(pe) <- Halted;
  m.halted <- m.halted + 1;
  m.rel.rl_quarantined <- pe :: m.rel.rl_quarantined

let phase_desc = function
  | Fetch -> "fetching"
  | Computing cs -> Printf.sprintf "computing (%d cycles left)" cs.cleft
  | Queued -> "queued on a bus"
  | Local_transfer lt ->
      Printf.sprintf "in a local transfer (%d cycles left)" lt.left
  | Sleeping s ->
      Printf.sprintf "sleeping before a poll retry (%d cycles left)" s.left
  | Backoff bo ->
      Printf.sprintf "backing off before bus retry %d" bo.txn.t_attempts
  | Fifo_blocked _ -> "blocked on a Bi-FIFO"
  | Irq_wait -> "waiting for a FIFO interrupt"
  | Halted -> "halted"

(* "pe1 at op #12, queued on a bus; pe3 at op #9, ..." for every PE
   that has not halted — the payload of Deadlock diagnostics. *)
let stuck_report m =
  let items = ref [] in
  Array.iteri
    (fun pe ph ->
      match ph with
      | Halted -> ()
      | ph ->
          items :=
            Printf.sprintf "pe%d at op #%d, %s" pe m.ops_done.(pe)
              (phase_desc ph)
            :: !items)
    m.phase;
  String.concat "; " (List.rev !items)

let resources_of c =
  match c.arch with
  | Bussyn.Generate.Bfba -> []
  | Bussyn.Generate.Gbavi -> List.init c.n_pes (fun k -> Seg k)
  | Bussyn.Generate.Gbavii -> Global :: List.init c.n_pes (fun k -> Seg k)
  | Bussyn.Generate.Gbaviii | Bussyn.Generate.Hybrid | Bussyn.Generate.Ggba
  | Bussyn.Generate.Ccba ->
      [ Global ]
  | Bussyn.Generate.Splitba ->
      List.init (max 1 c.n_subsystems) (fun k -> Ss k)

(* A resumable run: [start] builds the engine, [advance] pushes it a
   bounded number of cycles, [progress] exposes where it is.  [run] is
   the one-shot composition and keeps its exact historical semantics. *)
type session = {
  s_m : m;
  s_max : int;                     (* max_cycles guard *)
  mutable s_stop : bool;           (* degraded stop latched *)
  mutable s_result : stats option; (* final stats once finished *)
}

let start ?(max_cycles = 200_000_000) c programs =
  if Array.length programs <> c.n_pes then
    Stdlib.invalid_arg "Machine.run: program count <> n_pes";
  (* Programs are stateful generators: sharing one across PEs would
     silently split its operations between them. *)
  Array.iteri
    (fun i p ->
      Array.iteri
        (fun j q ->
          if i < j && p == q then
            Stdlib.invalid_arg
              (Printf.sprintf
                 "Machine.run: PEs %d and %d share one program generator" i j))
        programs)
    programs;
  let m =
    {
      c;
      programs;
      phase = Array.make c.n_pes Fetch;
      buses =
        List.mapi
          (fun i r ->
            { b_res = r; cur = None; cur_left = 0; cur_grant = 0;
              waiting = []; busy = 0; rr_last = c.n_pes - 1;
              b_lcg =
                (match c.faults with
                | Some fc -> (fc.f_seed + ((i + 1) * 0x27d4eb2f)) land 0x3FFFFFFF
                | None -> 0);
              b_fault = F_ok })
          (resources_of c);
      l1s =
        (match c.l1 with
        | None -> [||]
        | Some cfg ->
            Array.init c.n_pes (fun pe ->
                { cache = Cache.create cfg; pos = 0;
                  lcg = 12345 + (pe * 7919); run_left = l1_run }));
      flags = Hashtbl.create 32;
      locks = Hashtbl.create 32;
      fifo_count = Array.make c.n_pes 0;
      fifo_thr = Array.make c.n_pes 0;
      halted = 0;
      transactions = 0;
      words = 0;
      polls = 0;
      pe_busy = Array.make c.n_pes 0;
      pe_wait = Array.make c.n_pes 0;
      ops_done = Array.make c.n_pes 0;
      rel =
        { rl_errors = 0; rl_timeouts = 0; rl_retries = 0; rl_recovered = 0;
          rl_unrecovered = 0; rl_quarantined = [] };
      activity = false;
      m_marks = [];
      m_trace = [];
      now = 0;
    }
  in
  List.iter (fun (f, v) -> Hashtbl.replace m.flags f v) c.initial_flags;
  { s_m = m; s_max = max_cycles; s_stop = false; s_result = None }

(* With faults on, a quarantined PE can leave peers legitimately
   wedged (e.g. polling a flag it will never set); such runs stop and
   report instead of raising. *)
let degraded m = m.c.faults <> None && m.rel.rl_unrecovered > 0

(* One simulator cycle.  Returns [true] when the run should stop
   degraded (no progress, but quarantined PEs explain it). *)
let one_cycle m =
  let c = m.c in
  let t = c.timing in
  begin
    m.now <- m.now + 1;
    m.activity <- false;
    (* 1. Fetch phase: pull the next op for every ready PE. *)
    Array.iteri
      (fun pe ph -> match ph with Fetch -> fetch m pe | _ -> ())
      m.phase;
    (* 2. Buses: advance the active transaction; grant the next. *)
    List.iter
      (fun b ->
        (match b.cur with
        | Some txn ->
            m.activity <- true;
            b.busy <- b.busy + 1;
            b.cur_left <- b.cur_left - 1;
            if b.cur_left = 0 then begin
              let outcome = b.b_fault in
              b.cur <- None;
              b.b_fault <- F_ok;
              record m ~resource:(resource_name b.b_res) txn
                ~grant:b.cur_grant;
              match (outcome, m.c.faults) with
              | F_ok, _ | _, None ->
                  (* Effects run only on success: a failed transaction
                     never silently corrupts state. *)
                  if txn.t_attempts > 0 then
                    m.rel.rl_recovered <- m.rel.rl_recovered + 1;
                  m.phase.(txn.t_pe) <- txn.t_effect ()
              | (F_error | F_timeout), Some fc ->
                  (match outcome with
                  | F_error -> m.rel.rl_errors <- m.rel.rl_errors + 1
                  | F_timeout | F_ok ->
                      m.rel.rl_timeouts <- m.rel.rl_timeouts + 1);
                  if txn.t_attempts < fc.f_max_retries then begin
                    m.rel.rl_retries <- m.rel.rl_retries + 1;
                    let left =
                      fc.f_backoff_cycles lsl min txn.t_attempts 16
                    in
                    m.phase.(txn.t_pe) <-
                      Backoff
                        { left = max 1 left;
                          txn = { txn with t_attempts = txn.t_attempts + 1 }
                        }
                  end
                  else begin
                    m.rel.rl_unrecovered <- m.rel.rl_unrecovered + 1;
                    quarantine m txn.t_pe
                  end
            end
        | None -> ());
        if b.cur = None then grant_next m b)
      m.buses;
    (* 3. Per-PE progress. *)
    Array.iteri
      (fun pe ph ->
        match ph with
        | Computing cphase ->
            m.activity <- true;
            m.pe_busy.(pe) <- m.pe_busy.(pe) + 1;
            cphase.cleft <- cphase.cleft - 1;
            let miss =
              if m.l1s = [||] then begin
                (* Rational miss model. *)
                cphase.miss_acc <- cphase.miss_acc + t.Timing.miss_rate_num;
                if cphase.miss_acc >= t.Timing.miss_rate_den then begin
                  cphase.miss_acc <-
                    cphase.miss_acc - t.Timing.miss_rate_den;
                  true
                end
                else false
              end
              else begin
                (* Real L1 over a sequential-with-jumps stream. *)
                let st = m.l1s.(pe) in
                st.run_left <- st.run_left - 1;
                if st.run_left <= 0 then begin
                  st.run_left <- l1_run;
                  st.lcg <-
                    ((st.lcg * 1664525) + 1013904223) land 0x3FFFFFFF;
                  st.pos <- st.lcg mod l1_footprint_words
                end
                else st.pos <- (st.pos + 1) mod l1_footprint_words;
                Cache.access st.cache st.pos = `Miss
              end
            in
            let resume_left = cphase.cleft in
            if miss then begin
              let path = miss_path m.c pe in
              let miss_acc = cphase.miss_acc in
              let effect () =
                if resume_left = 0 then Fetch
                else Computing { cleft = resume_left; miss_acc }
              in
              submit m path
                (txn_of_path ~pe ~words:t.Timing.line_words ~kind:"miss" path
                   effect)
            end;
            (match m.phase.(pe) with
            | Computing c2 when c2 == cphase && cphase.cleft = 0 ->
                m.phase.(pe) <- Fetch
            | Computing _ | Fetch | Queued | Local_transfer _ | Sleeping _
            | Backoff _ | Fifo_blocked _ | Irq_wait | Halted ->
                ())
        | Backoff bo ->
            m.activity <- true;
            m.pe_wait.(pe) <- m.pe_wait.(pe) + 1;
            bo.left <- bo.left - 1;
            if bo.left <= 0 then
              (* Resubmission is a fresh transaction from the bus's
                 point of view (it re-arbitrates and re-transfers), so
                 it goes through [submit] and is counted as traffic. *)
              submit m bo.txn.t_path bo.txn
        | Local_transfer lt ->
            m.activity <- true;
            lt.left <- lt.left - 1;
            if lt.left <= 0 then m.phase.(pe) <- lt.effect ()
        | Sleeping s ->
            m.activity <- true;
            m.pe_wait.(pe) <- m.pe_wait.(pe) + 1;
            s.left <- s.left - 1;
            if s.left <= 0 then exec_op m pe s.retry
        | Fifo_blocked op ->
            m.pe_wait.(pe) <- m.pe_wait.(pe) + 1;
            exec_op m pe op
        | Irq_wait ->
            m.pe_wait.(pe) <- m.pe_wait.(pe) + 1;
            if m.fifo_thr.(pe) > 0 && m.fifo_count.(pe) >= m.fifo_thr.(pe)
            then begin
              m.activity <- true;
              m.phase.(pe) <- Fetch
            end
        | Queued -> m.pe_wait.(pe) <- m.pe_wait.(pe) + 1
        | Fetch | Halted -> ())
      m.phase;
    if (not m.activity) && m.halted < c.n_pes then begin
      if degraded m then true
      else
        raise
          (Deadlock
             (Printf.sprintf "no progress at cycle %d (%d/%d PEs halted): %s"
                m.now m.halted c.n_pes (stuck_report m)))
    end
    else false
  end

let stats_of m =
  {
    cycles = m.now;
    pe_busy = m.pe_busy;
    pe_wait = m.pe_wait;
    bus_busy =
      List.map (fun b -> (resource_name b.b_res, b.busy)) m.buses;
    transactions = m.transactions;
    words_transferred = m.words;
    polls = m.polls;
    marks = List.rev m.m_marks;
    trace = List.rev m.m_trace;
    reliability =
      (match m.c.faults with
      | None -> None
      | Some _ ->
          Some
            {
              r_errors = m.rel.rl_errors;
              r_timeouts = m.rel.rl_timeouts;
              r_retries = m.rel.rl_retries;
              r_recovered = m.rel.rl_recovered;
              r_unrecovered = m.rel.rl_unrecovered;
              r_quarantined = List.rev m.rel.rl_quarantined;
            });
  }

let advance s ~cycles =
  match s.s_result with
  | Some st -> `Done st
  | None ->
      let m = s.s_m in
      let n = m.c.n_pes in
      let budget = ref cycles in
      while (not s.s_stop) && m.halted < n && m.now < s.s_max && !budget > 0 do
        decr budget;
        if one_cycle m then s.s_stop <- true
      done;
      if s.s_stop || m.halted >= n || m.now >= s.s_max then begin
        if m.halted < n && not (degraded m) then
          raise
            (Deadlock
               (Printf.sprintf
                  "max_cycles (%d) exceeded, %d of %d PEs not halted: %s"
                  s.s_max (n - m.halted) n (stuck_report m)));
        let st = stats_of m in
        s.s_result <- Some st;
        `Done st
      end
      else `Running

let run ?max_cycles c programs =
  let s = start ?max_cycles c programs in
  let rec go () =
    match advance s ~cycles:max_int with `Done st -> st | `Running -> go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Progress and state digest                                           *)
(* ------------------------------------------------------------------ *)

type progress = {
  pr_cycle : int;
  pr_halted : int;
  pr_ops_done : int array;
  pr_phases : string array;
  pr_transactions : int;
  pr_words : int;
  pr_digest : int;
}

let flag_text = function
  | Program.Hs_flag (k, name) -> Printf.sprintf "hs%d:%s" k name
  | Program.Var_flag name -> "var:" ^ name

(* FNV-style fold over every piece of serializable engine state.  The
   per-PE phases carry closures, so a Machine run cannot be restored by
   copying state — restore is deterministic replay to the recorded
   cycle, and this digest is the proof that the replay reconverged on
   the exact state the checkpoint saw. *)
let digest_of m =
  let h = ref 0x811C9DC5 in
  let add x = h := ((!h lxor x) * 0x01000193) land max_int in
  let adds s = String.iter (fun ch -> add (Char.code ch)) s in
  let phase_sig = function
    | Fetch -> (0, 0, 0)
    | Computing cs -> (1, cs.cleft, cs.miss_acc)
    | Queued -> (2, 0, 0)
    | Local_transfer lt -> (3, lt.left, 0)
    | Sleeping sl -> (4, sl.left, 0)
    | Backoff bo -> (5, bo.left, bo.txn.t_attempts)
    | Fifo_blocked _ -> (6, 0, 0)
    | Irq_wait -> (7, 0, 0)
    | Halted -> (8, 0, 0)
  in
  add m.now;
  add m.halted;
  add m.transactions;
  add m.words;
  add m.polls;
  Array.iter add m.ops_done;
  Array.iter add m.pe_busy;
  Array.iter add m.pe_wait;
  Array.iter add m.fifo_count;
  Array.iter add m.fifo_thr;
  Array.iter
    (fun ph ->
      let a, b, c = phase_sig ph in
      add a;
      add b;
      add c)
    m.phase;
  List.iter
    (fun b ->
      add b.busy;
      add b.cur_left;
      add b.cur_grant;
      add b.rr_last;
      add b.b_lcg;
      add (match b.cur with Some t -> t.t_pe + 1 | None -> 0);
      add (List.length b.waiting);
      List.iter (fun t -> add t.t_pe) b.waiting)
    m.buses;
  Hashtbl.fold (fun f v acc -> (flag_text f, v) :: acc) m.flags []
  |> List.sort compare
  |> List.iter (fun (s, v) ->
         adds s;
         add (if v then 1 else 0));
  Hashtbl.fold (fun name owner acc -> (name, owner) :: acc) m.locks []
  |> List.sort compare
  |> List.iter (fun (s, owner) ->
         adds s;
         add owner);
  Array.iter
    (fun st ->
      add st.pos;
      add st.lcg;
      add st.run_left)
    m.l1s;
  add m.rel.rl_errors;
  add m.rel.rl_timeouts;
  add m.rel.rl_retries;
  add m.rel.rl_recovered;
  add m.rel.rl_unrecovered;
  List.iter add m.rel.rl_quarantined;
  !h

let progress s =
  let m = s.s_m in
  {
    pr_cycle = m.now;
    pr_halted = m.halted;
    pr_ops_done = Array.copy m.ops_done;
    pr_phases = Array.map phase_desc m.phase;
    pr_transactions = m.transactions;
    pr_words = m.words;
    pr_digest = digest_of m;
  }

let finished s = s.s_result <> None
