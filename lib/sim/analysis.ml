type latency = { count : int; mean : float; max : int; p95 : int }

let latency_of waits =
  match waits with
  | [] -> { count = 0; mean = 0.0; max = 0; p95 = 0 }
  | _ ->
      let sorted = List.sort compare waits in
      let n = List.length sorted in
      let arr = Array.of_list sorted in
      {
        count = n;
        mean =
          float_of_int (List.fold_left ( + ) 0 waits) /. float_of_int n;
        max = arr.(n - 1);
        p95 = arr.(min (n - 1) (n * 95 / 100));
      }

let queueing (s : Machine.stats) =
  let by_bus = Hashtbl.create 8 in
  List.iter
    (fun (r : Machine.txn_record) ->
      match r.Machine.tr_resource with
      | None -> ()
      | Some bus ->
          let waits =
            match Hashtbl.find_opt by_bus bus with Some w -> w | None -> []
          in
          Hashtbl.replace by_bus bus
            ((r.Machine.tr_grant - r.Machine.tr_submit) :: waits))
    s.Machine.trace;
  Hashtbl.fold (fun bus waits acc -> (bus, latency_of waits) :: acc) by_bus []
  |> List.sort compare

let words_by_kind (s : Machine.stats) =
  let by_kind = Hashtbl.create 8 in
  List.iter
    (fun (r : Machine.txn_record) ->
      let prev =
        match Hashtbl.find_opt by_kind r.Machine.tr_kind with
        | Some w -> w
        | None -> 0
      in
      Hashtbl.replace by_kind r.Machine.tr_kind (prev + r.Machine.tr_words))
    s.Machine.trace;
  Hashtbl.fold (fun k w acc -> (k, w) :: acc) by_kind []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let utilization (s : Machine.stats) =
  List.map
    (fun (bus, busy) ->
      (bus, float_of_int busy /. float_of_int (max 1 s.Machine.cycles)))
    s.Machine.bus_busy

let timeline (s : Machine.stats) ~buckets =
  if buckets < 1 then invalid_arg "Analysis.timeline: buckets < 1";
  let width = max 1 ((s.Machine.cycles + buckets - 1) / buckets) in
  let buses = List.map fst s.Machine.bus_busy in
  let table =
    List.map (fun bus -> (bus, Array.make buckets 0.0)) buses
  in
  List.iter
    (fun (r : Machine.txn_record) ->
      match r.Machine.tr_resource with
      | None -> ()
      | Some bus -> (
          match List.assoc_opt bus table with
          | None -> ()
          | Some arr ->
              (* Spread the busy interval [grant, finish) over buckets. *)
              let rec fill t =
                if t < r.Machine.tr_finish then begin
                  let b = min (buckets - 1) (t / width) in
                  let seg_end = min r.Machine.tr_finish (((t / width) + 1) * width) in
                  arr.(b) <- arr.(b) +. float_of_int (seg_end - t);
                  fill seg_end
                end
              in
              fill r.Machine.tr_grant))
    s.Machine.trace;
  List.map
    (fun (bus, arr) ->
      (bus, Array.map (fun v -> v /. float_of_int width) arr))
    table

let per_pe (s : Machine.stats) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r : Machine.txn_record) ->
      let t, w =
        match Hashtbl.find_opt tbl r.Machine.tr_pe with
        | Some (t, w) -> (t, w)
        | None -> (0, 0)
      in
      Hashtbl.replace tbl r.Machine.tr_pe (t + 1, w + r.Machine.tr_words))
    s.Machine.trace;
  Hashtbl.fold (fun pe (t, w) acc -> (pe, t, w) :: acc) tbl []
  |> List.sort compare

let bus_energy (s : Machine.stats) ~n_pes =
  let factor (r : Machine.txn_record) =
    match r.Machine.tr_resource with
    | None -> if r.Machine.tr_kind = "fifo" then 0.15 else 0.2
    | Some "global" -> 1.0
    | Some bus ->
        if String.length bus >= 2 && String.sub bus 0 2 = "ss" then 0.55
        else 2.0 /. float_of_int (max 2 n_pes) (* seg<k> *)
  in
  List.fold_left
    (fun acc r -> acc +. (float_of_int r.Machine.tr_words *. factor r))
    0.0 s.Machine.trace

let lock_contention (s : Machine.stats) =
  let per_lock = Hashtbl.create 8 in
  List.iter
    (fun (r : Machine.txn_record) ->
      match (r.Machine.tr_kind, r.Machine.tr_label) with
      | "lock", Some name ->
          let attempts, wait =
            match Hashtbl.find_opt per_lock name with
            | Some (a, w) -> (a, w)
            | None -> (0, 0)
          in
          Hashtbl.replace per_lock name
            (attempts + 1, wait + (r.Machine.tr_grant - r.Machine.tr_submit))
      | _ -> ())
    s.Machine.trace;
  List.sort
    (fun (_, a, _) (_, b, _) -> compare b a)
    (Hashtbl.fold
       (fun name (attempts, wait) acc ->
         (name, attempts,
          if attempts = 0 then 0.0
          else float_of_int wait /. float_of_int attempts)
         :: acc)
       per_lock [])

(* ------------------------------------------------------------------ *)
(* Reliability                                                         *)
(* ------------------------------------------------------------------ *)

type reliability_report = {
  rr_errors : int;
  rr_timeouts : int;
  rr_retries : int;
  rr_recovered : int;
  rr_unrecovered : int;
  rr_quarantined : int list;
  rr_fault_rate : float;       (* faults per submitted transaction *)
  rr_words_per_kcycle : float; (* goodput under faults *)
}

let reliability (s : Machine.stats) =
  match s.Machine.reliability with
  | None -> None
  | Some r ->
      let faults = r.Machine.r_errors + r.Machine.r_timeouts in
      Some
        {
          rr_errors = r.Machine.r_errors;
          rr_timeouts = r.Machine.r_timeouts;
          rr_retries = r.Machine.r_retries;
          rr_recovered = r.Machine.r_recovered;
          rr_unrecovered = r.Machine.r_unrecovered;
          rr_quarantined = r.Machine.r_quarantined;
          rr_fault_rate =
            float_of_int faults
            /. float_of_int (max 1 s.Machine.transactions);
          rr_words_per_kcycle =
            1000.0
            *. float_of_int s.Machine.words_transferred
            /. float_of_int (max 1 s.Machine.cycles);
        }

let pp_reliability fmt rr =
  Format.fprintf fmt
    "@[<v>faults: %d errors, %d timeouts (%.4f per txn)@,\
     recovery: %d retries, %d recovered, %d unrecovered@,\
     goodput: %.1f words/kcycle@,"
    rr.rr_errors rr.rr_timeouts rr.rr_fault_rate rr.rr_retries rr.rr_recovered
    rr.rr_unrecovered rr.rr_words_per_kcycle;
  (match rr.rr_quarantined with
  | [] -> Format.fprintf fmt "quarantined PEs: none@,"
  | pes ->
      Format.fprintf fmt "quarantined PEs: %s@,"
        (String.concat ", "
           (List.map (fun pe -> Printf.sprintf "pe%d" pe) pes)));
  Format.fprintf fmt "@]"

let pp_report fmt (s : Machine.stats) =
  Format.fprintf fmt "@[<v>run: %d cycles, %d transactions, %d words@,"
    s.Machine.cycles s.Machine.transactions s.Machine.words_transferred;
  List.iter
    (fun (bus, u) ->
      Format.fprintf fmt "bus %-8s %5.1f%% utilized@," bus (100.0 *. u))
    (utilization s);
  (match queueing s with
  | [] -> Format.fprintf fmt "(no trace: enable config.trace for queueing)@,"
  | qs ->
      List.iter
        (fun (bus, l) ->
          Format.fprintf fmt
            "bus %-8s queueing: %d grants, mean %.1f, p95 %d, max %d cycles@,"
            bus l.count l.mean l.p95 l.max)
        qs);
  List.iter
    (fun (kind, words) ->
      Format.fprintf fmt "traffic %-6s %8d words@," kind words)
    (words_by_kind s);
  List.iter
    (fun (name, attempts, mean_wait) ->
      Format.fprintf fmt "lock %-12s %6d txns, mean wait %.1f cycles@," name
        attempts mean_wait)
    (lock_contention s);
  (* A coarse utilization sparkline per bus when a trace is present. *)
  if s.Machine.trace <> [] then
    List.iter
      (fun (bus, arr) ->
        let glyph v =
          let levels = " .:-=+*#%@" in
          let i =
            min (String.length levels - 1)
              (int_of_float (v *. float_of_int (String.length levels)))
          in
          levels.[max 0 i]
        in
        Format.fprintf fmt "load %-8s |%s|@," bus
          (String.init (Array.length arr) (fun i -> glyph arr.(i))))
      (timeline s ~buckets:40);
  (match reliability s with
  | None -> ()
  | Some rr -> Format.fprintf fmt "%a" pp_reliability rr);
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let csv_of_trace (s : Machine.stats) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "pe,kind,resource,submit,grant,finish,words\n";
  List.iter
    (fun (r : Machine.txn_record) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%s,%d,%d,%d,%d\n" r.Machine.tr_pe
           r.Machine.tr_kind
           (Option.value ~default:"private" r.Machine.tr_resource)
           r.Machine.tr_submit r.Machine.tr_grant r.Machine.tr_finish
           r.Machine.tr_words))
    s.Machine.trace;
  Buffer.contents buf

let csv_of_timeline (s : Machine.stats) ~buckets =
  let series = timeline s ~buckets in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    ("bucket" ^ String.concat "" (List.map (fun (b, _) -> "," ^ b) series)
    ^ "\n");
  for i = 0 to buckets - 1 do
    Buffer.add_string buf (string_of_int i);
    List.iter
      (fun (_, arr) ->
        Buffer.add_string buf (Printf.sprintf ",%.4f" arr.(i)))
      series;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let write_csv ~path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let gnuplot_utilization ~data_path ~buckets (s : Machine.stats) =
  let series = timeline s ~buckets in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "set datafile separator ','\n";
  Buffer.add_string buf "set key outside\n";
  Buffer.add_string buf "set xlabel 'time bucket'\n";
  Buffer.add_string buf "set ylabel 'bus utilization'\n";
  Buffer.add_string buf "set yrange [0:1]\n";
  Buffer.add_string buf
    (Printf.sprintf "plot %s\n"
       (String.concat ", \\\n     "
          (List.mapi
             (fun i (bus, _) ->
               Printf.sprintf "'%s' using 1:%d with lines title '%s'"
                 data_path (i + 2) bus)
             series)));
  Buffer.contents buf
