(** Post-run analysis over a traced simulation
    ({!Machine.config.trace} = true).

    Quantifies the "performance impacting factors" the paper's design
    space exploration is about: where the cycles go per PE, how loaded
    each bus is, and the queueing latency its masters suffer. *)

type latency = {
  count : int;
  mean : float;
  max : int;
  p95 : int;
      (** 95th percentile of grant - submit (arbitration queueing) *)
}

val queueing : Machine.stats -> (string * latency) list
(** Arbitration wait statistics per bus resource. *)

val words_by_kind : Machine.stats -> (string * int) list
(** Words moved per transaction kind ([read], [write], [flag], [lock],
    [miss], [fifo]), descending. *)

val utilization : Machine.stats -> (string * float) list
(** Busy fraction per bus over the whole run (from {!Machine.stats}
    occupancy counters; works without tracing). *)

val timeline : Machine.stats -> buckets:int -> (string * float array) list
(** Per-bus utilization over [buckets] equal time windows (requires
    tracing: computed from transaction grant/finish intervals). *)

val per_pe : Machine.stats -> (int * int * int) list
(** Per PE: (pe, transactions, words), from the trace, ascending pe. *)

val bus_energy : Machine.stats -> n_pes:int -> float
(** Relative switched-capacitance energy of the run's bus traffic, in
    abstract units: each traced word costs the capacitance factor of the
    wire it toggled.  Factors follow the paper's bus-splitting power
    argument (Section IV.B, citing Hsieh & Pedram): a full-length global
    bus is 1.0 per word; a split-bus half 0.55; a single-BAN segment
    [2/n_pes]; private local wiring 0.2; Bi-FIFO point-to-point links
    0.15.  Requires tracing. *)

val lock_contention : Machine.stats -> (string * int * float) list
(** Per-lock [(name, bus transactions, mean queueing wait)] from the
    trace, most-contended first.  Counts every lock-path transaction —
    acquisition polls, test-and-sets and releases — so a hot lock shows
    both its traffic and the arbitration delay around it. *)

(** {1 Reliability}

    Digest of {!Machine.stats.reliability} for fault-injection runs. *)

type reliability_report = {
  rr_errors : int;
  rr_timeouts : int;
  rr_retries : int;
  rr_recovered : int;
  rr_unrecovered : int;
  rr_quarantined : int list;
  rr_fault_rate : float;
      (** injected faults per submitted transaction (bus and private
          paths together; only bus grants can fault) *)
  rr_words_per_kcycle : float;
      (** degraded throughput: words moved per 1000 cycles, retries and
          watchdog stalls included *)
}

val reliability : Machine.stats -> reliability_report option
(** [Some _] exactly when the run had {!Machine.config.faults} set. *)

val pp_reliability : Format.formatter -> reliability_report -> unit

val pp_report : Format.formatter -> Machine.stats -> unit
(** Human-readable summary of all of the above, including the
    reliability digest when present. *)

(** {1 Export}

    Machine-readable dumps for external plotting, completing the
    paper's experimental flow: the bench prints tables, these emit the
    underlying series. *)

val csv_of_trace : Machine.stats -> string
(** One row per traced transaction:
    [pe,kind,resource,submit,grant,finish,words] with a header line.
    Requires tracing; the header alone otherwise. *)

val csv_of_timeline : Machine.stats -> buckets:int -> string
(** Bucketed per-bus utilization: [bucket,<bus1>,<bus2>,...] rows. *)

val write_csv : path:string -> string -> unit
(** Write CSV text produced by the functions above. *)

val gnuplot_utilization : data_path:string -> buckets:int ->
  Machine.stats -> string
(** A gnuplot script plotting every bus column of
    {!csv_of_timeline} (written at [data_path]) as a line series. *)
