open Busgen_rtl

type role = Generator | Checker

type params = { data_width : int; role : role }

let module_name p =
  Printf.sprintf "parity_%s_d%d"
    (match p.role with Generator -> "gen" | Checker -> "chk")
    p.data_width

(* Even parity over the data lines: the generator emits the XOR
   reduction of [data]; the checker recomputes it and flags [error] when
   it disagrees with the received [parity] bit.  Both are combinational,
   adding no latency to the protected bus. *)
let create p =
  if p.data_width < 1 then invalid_arg "Parity: data_width must be >= 1";
  let open Circuit.Builder in
  let b = create (module_name p) in
  let data = input b "data" p.data_width in
  let reduce = Expr.Unop (Expr.Reduce_xor, data) in
  (match p.role with
  | Generator ->
      output b "parity" 1;
      assign b "parity" reduce
  | Checker ->
      let parity = input b "parity" 1 in
      output b "error" 1;
      assign b "error" Expr.(reduce ^: parity));
  finish b
