(** The Module Library front-end (paper Section V.A).

    Maps the paper's library component names — [CBI_<PE>],
    [<memory>_comp], [MBI_<memory>], [BB_<bb_type>], [ARBITER_<arb_type>],
    [ABI], [GBI_<bus_type>], [SB_<bus_type>], plus [HS_REGS], [FIFO] and
    [BI_FIFO] — to circuit generators.  PEs (item A) are IP cores, not
    Modules, and therefore have no generator; {!pe_catalog} lists them for
    the option validator. *)

type spec =
  | Spec_sram of Sram.params
  | Spec_mbi of Mbi.params
  | Spec_cbi of Cbi.params
  | Spec_bb of Bb.params
  | Spec_arbiter of Arbiter.params
  | Spec_abi of Abi.params
  | Spec_gbi of Gbi.params
  | Spec_sb of Sb.params
  | Spec_hs_regs of Hs_regs.params
  | Spec_fifo of Fifo.params
  | Spec_bififo of Bififo.params
  | Spec_busmux of Busmux.params
  | Spec_busjoin of Busjoin.params
  | Spec_hs_slave of Hs_slave.params
  | Spec_fifo_slave of Fifo_slave.params
  | Spec_dpram of Dpram.params
  | Spec_dct of Dct_ip.params
  | Spec_fft of Fft_ip.params
  | Spec_fft_adapter of Fft_adapter.params
  | Spec_rom of Rom.params
  | Spec_watchdog of Watchdog.params
  | Spec_parity of Parity.params

val module_name : spec -> string
(** The generated module's name, e.g. [mbi_sram_a20_d64_ba32_b64]. *)

val library_name : spec -> string
(** The paper's library component name, e.g. [MBI_SRAM]. *)

val create : spec -> Busgen_rtl.Circuit.t
(** Instantiate the template with its parameters.  Results are memoized
    per parameter vector in a bounded LRU (cap {!set_cache_cap}, default
    512 — far above what any single run instantiates), so repeated BANs
    share module definitions and a long-lived server cannot grow the
    table without bound. *)

val default_cap : int
(** The memo table's default capacity (512). *)

val cache_stats : unit -> Busgen_cache.Lru.stats
(** Hit/miss/eviction counters of the memo table, for the daemon's
    [stats] reply and diagnostics. *)

val set_cache_cap : int -> unit
(** Rebound the memo table, evicting least-recently-used entries if
    needed.  Raises [Invalid_argument] if the cap is [< 1]. *)

val pe_catalog : string list
(** Supported PE cores ([MPC750], [MPC755], [MPC7410], [ARM9TDMI]). *)

val available : string list
(** All library component names, for diagnostics and the CLI. *)
