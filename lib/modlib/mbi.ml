open Busgen_rtl

type params = {
  mem_kind : Sram.kind;
  mem_addr_width : int;
  mem_data_width : int;
  bus_addr_width : int;
  bus_data_width : int;
  latency : int;
}

let module_name p =
  (* Every parameter that shapes the circuit must appear in the name:
     {!Catalog.create} memoizes by it, so an omission makes configs that
     differ only in that parameter share one (wrong) circuit. *)
  Printf.sprintf "mbi_%s_a%d_d%d_ba%d_b%d"
    (match p.mem_kind with Sram.Sram -> "sram" | Sram.Dram -> "dram")
    p.mem_addr_width p.mem_data_width p.bus_addr_width p.bus_data_width

let for_sram (s : Sram.params) ~bus_addr_width ~bus_data_width =
  {
    mem_kind = s.Sram.kind;
    mem_addr_width = s.Sram.addr_width;
    mem_data_width = s.Sram.data_width;
    bus_addr_width;
    bus_data_width;
    latency = (match s.Sram.kind with Sram.Sram -> 1 | Sram.Dram -> 3);
  }

let create p =
  if p.mem_data_width > p.bus_data_width then
    invalid_arg "Mbi: memory wider than bus";
  if p.mem_addr_width > p.bus_addr_width then
    invalid_arg "Mbi: memory address wider than bus address";
  if p.latency < 1 then invalid_arg "Mbi: latency < 1";
  let bit_difference = p.bus_data_width - p.mem_data_width in
  let open Circuit.Builder in
  let open Expr in
  let b = create (module_name p) in
  let sel = input b "sel" 1 in
  let rnw = input b "rnw" 1 in
  let addr = input b "addr" p.bus_addr_width in
  let wdata = input b "wdata" p.bus_data_width in
  let m_rdata = input b "m_rdata" p.mem_data_width in
  output b "rdata" p.bus_data_width;
  output b "ack" 1;
  output b "csb" 1;
  output b "web" 1;
  output b "reb" 1;
  output b "m_addr" p.mem_addr_width;
  output b "m_wdata" p.mem_data_width;
  assign b "csb" (~:sel);
  assign b "web" (~:(sel &: ~:rnw));
  assign b "reb" (~:(sel &: rnw));
  assign b "m_addr" (select addr (p.mem_addr_width - 1) 0);
  assign b "m_wdata" (select wdata (p.mem_data_width - 1) 0);
  (* Zero-extend the memory word over the bit difference (Fig. 14's
     {BIT_DIFFERENCE'b0, sram_dq}). *)
  assign b "rdata"
    (if bit_difference = 0 then m_rdata
     else concat [ const_int ~width:bit_difference 0; m_rdata ]);
  (* Ack pipeline: ack after [latency] cycles of continuous select. *)
  let stage = ref sel in
  for i = 1 to p.latency do
    let r = reg b (Printf.sprintf "ack_p%d" i) 1 () in
    set_next b (Printf.sprintf "ack_p%d" i) (!stage &: sel);
    stage := r
  done;
  assign b "ack" (!stage &: sel);
  finish b
