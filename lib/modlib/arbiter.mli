(** Bus arbiter generators (paper Module Library item F).

    All arbiters share the interface:
    - input  [req\[n\]]  — one request line per master (level-held until the
      transaction completes);
    - output [grant\[n\]] — one-hot grant; a granted master keeps its grant
      while it holds its request (bus locking);
    - output [busy] — some grant is active;
    - output [grant_id\[clog2 n\]] — binary index of the granted master.

    Policies:
    - [Priority]: fixed priority, master 0 highest;
    - [Round_robin]: rotating priority, starting after the last winner;
    - [Fcfs]: first-come-first-served through an internal FIFO of master
      ids (the policy the paper's GBAVIII global arbiter uses). *)

type policy = Priority | Round_robin | Fcfs

type params = { policy : policy; masters : int }

val policy_name : policy -> string
(** ["priority"], ["rr"] or ["fcfs"] — the spelling used in module
    names, profile files and explore reports. *)

val module_name : params -> string
val create : params -> Busgen_rtl.Circuit.t
val id_width : params -> int
