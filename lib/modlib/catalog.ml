type spec =
  | Spec_sram of Sram.params
  | Spec_mbi of Mbi.params
  | Spec_cbi of Cbi.params
  | Spec_bb of Bb.params
  | Spec_arbiter of Arbiter.params
  | Spec_abi of Abi.params
  | Spec_gbi of Gbi.params
  | Spec_sb of Sb.params
  | Spec_hs_regs of Hs_regs.params
  | Spec_fifo of Fifo.params
  | Spec_bififo of Bififo.params
  | Spec_busmux of Busmux.params
  | Spec_busjoin of Busjoin.params
  | Spec_hs_slave of Hs_slave.params
  | Spec_fifo_slave of Fifo_slave.params
  | Spec_dpram of Dpram.params
  | Spec_dct of Dct_ip.params
  | Spec_fft of Fft_ip.params
  | Spec_fft_adapter of Fft_adapter.params
  | Spec_rom of Rom.params
  | Spec_watchdog of Watchdog.params
  | Spec_parity of Parity.params

let module_name = function
  | Spec_sram p -> Sram.module_name p
  | Spec_mbi p -> Mbi.module_name p
  | Spec_cbi p -> Cbi.module_name p
  | Spec_bb p -> Bb.module_name p
  | Spec_arbiter p -> Arbiter.module_name p
  | Spec_abi p -> Abi.module_name p
  | Spec_gbi p -> Gbi.module_name p
  | Spec_sb p -> Sb.module_name p
  | Spec_hs_regs p -> Hs_regs.module_name p
  | Spec_fifo p -> Fifo.module_name p
  | Spec_bififo p -> Bififo.module_name p
  | Spec_busmux p -> Busmux.module_name p
  | Spec_busjoin p -> Busjoin.module_name p
  | Spec_hs_slave p -> Hs_slave.module_name p
  | Spec_fifo_slave p -> Fifo_slave.module_name p
  | Spec_dpram p -> Dpram.module_name p
  | Spec_dct p -> Dct_ip.module_name p
  | Spec_fft p -> Fft_ip.module_name p
  | Spec_fft_adapter p -> Fft_adapter.module_name p
  | Spec_rom p -> Rom.module_name p
  | Spec_watchdog p -> Watchdog.module_name p
  | Spec_parity p -> Parity.module_name p

let library_name = function
  | Spec_sram { Sram.kind = Sram.Sram; _ } -> "SRAM_comp"
  | Spec_sram { Sram.kind = Sram.Dram; _ } -> "DRAM_comp"
  | Spec_mbi { Mbi.mem_kind = Sram.Sram; _ } -> "MBI_SRAM"
  | Spec_mbi { Mbi.mem_kind = Sram.Dram; _ } -> "MBI_DRAM"
  | Spec_cbi p -> "CBI_" ^ String.uppercase_ascii (Cbi.pe_name p.Cbi.pe)
  | Spec_bb { Bb.bb_type = Bb.Gbavi; _ } -> "BB_GBAVI"
  | Spec_bb { Bb.bb_type = Bb.Splitba; _ } -> "BB_SPLITBA"
  | Spec_arbiter { Arbiter.policy = Arbiter.Priority; _ } ->
      "ARBITER_PRIORITY"
  | Spec_arbiter { Arbiter.policy = Arbiter.Round_robin; _ } ->
      "ARBITER_ROUND_ROBIN"
  | Spec_arbiter { Arbiter.policy = Arbiter.Fcfs; _ } -> "ARBITER_FCFS"
  | Spec_abi _ -> "ABI"
  | Spec_gbi { Gbi.bus_type = Gbi.Gbi_gbavi; _ } -> "GBI_GBAVI"
  | Spec_gbi { Gbi.bus_type = Gbi.Gbi_gbaviii; _ } -> "GBI_GBAVIII"
  | Spec_gbi { Gbi.bus_type = Gbi.Gbi_bfba; _ } -> "GBI_BFBA"
  | Spec_sb { Sb.bus_type = Sb.Sb_gbavi; _ } -> "SB_GBAVI"
  | Spec_sb { Sb.bus_type = Sb.Sb_gbaviii; _ } -> "SB_GBAVIII"
  | Spec_sb { Sb.bus_type = Sb.Sb_bfba; _ } -> "SB_BFBA"
  | Spec_hs_regs _ -> "HS_REGS"
  | Spec_fifo _ -> "FIFO"
  | Spec_bififo _ -> "BI_FIFO"
  | Spec_busmux _ -> "IL_BUSMUX"
  | Spec_busjoin _ -> "IL_BUSJOIN"
  | Spec_hs_slave _ -> "IL_HS_SLAVE"
  | Spec_fifo_slave _ -> "IL_FIFO_SLAVE"
  | Spec_dpram _ -> "DPRAM_comp"
  | Spec_dct _ -> "DCT_IP"
  | Spec_fft _ -> "FFT_IP"
  | Spec_fft_adapter _ -> "IL_FFT_ADAPTER"
  | Spec_rom _ -> "ROM_comp"
  | Spec_watchdog _ -> "WATCHDOG"
  | Spec_parity { Parity.role = Parity.Generator; _ } -> "PARITY_GEN"
  | Spec_parity { Parity.role = Parity.Checker; _ } -> "PARITY_CHK"

(* The one process-wide memo table.  Parallel sweeps (busgen_par)
   generate designs from worker domains, so every lookup-or-build goes
   through the LRU's internal lock; build time is microseconds against
   the simulations the workers run, so contention is noise.  The table
   is bounded so a long-lived process (the serve daemon) cannot grow it
   without limit: the default cap comfortably holds every distinct
   module a one-shot CLI run or full sweep instantiates (the complete
   library is ~35 templates; distinct parameterizations per run number
   in the dozens), so one-shot behavior is identical to the old
   unbounded table — eviction only ever fires on daemon-scale
   churn across many unrelated configs. *)
let default_cap = 512
let cache : (string, Busgen_rtl.Circuit.t) Busgen_cache.Lru.t =
  Busgen_cache.Lru.create ~cap:default_cap ()

let cache_stats () = Busgen_cache.Lru.stats cache
let set_cache_cap cap = Busgen_cache.Lru.resize cache ~cap

let create spec =
  let key = module_name spec in
  Busgen_cache.Lru.find_or_add cache key @@ fun () ->
      (
        match spec with
        | Spec_sram p -> Sram.create p
        | Spec_mbi p -> Mbi.create p
        | Spec_cbi p -> Cbi.create p
        | Spec_bb p -> Bb.create p
        | Spec_arbiter p -> Arbiter.create p
        | Spec_abi p -> Abi.create p
        | Spec_gbi p -> Gbi.create p
        | Spec_sb p -> Sb.create p
        | Spec_hs_regs p -> Hs_regs.create p
        | Spec_fifo p -> Fifo.create p
        | Spec_bififo p -> Bififo.create p
        | Spec_busmux p -> Busmux.create p
        | Spec_busjoin p -> Busjoin.create p
        | Spec_hs_slave p -> Hs_slave.create p
        | Spec_fifo_slave p -> Fifo_slave.create p
        | Spec_dpram p -> Dpram.create p
        | Spec_dct p -> Dct_ip.create p
        | Spec_fft p -> Fft_ip.create p
        | Spec_fft_adapter p -> Fft_adapter.create p
        | Spec_rom p -> Rom.create p
        | Spec_watchdog p -> Watchdog.create p
        | Spec_parity p -> Parity.create p
      )

let pe_catalog = [ "MPC750"; "MPC755"; "MPC7410"; "ARM9TDMI" ]

let available =
  [
    "SRAM_comp";
    "DRAM_comp";
    "ROM_comp";
    "MBI_SRAM";
    "MBI_DRAM";
    "CBI_MPC750";
    "CBI_MPC755";
    "CBI_MPC7410";
    "CBI_ARM9TDMI";
    "BB_GBAVI";
    "BB_SPLITBA";
    "ARBITER_PRIORITY";
    "ARBITER_ROUND_ROBIN";
    "ARBITER_FCFS";
    "ABI";
    "GBI_GBAVI";
    "GBI_GBAVIII";
    "GBI_BFBA";
    "SB_GBAVI";
    "SB_GBAVIII";
    "SB_BFBA";
    "HS_REGS";
    "FIFO";
    "BI_FIFO";
    "IL_BUSMUX";
    "IL_BUSJOIN";
    "IL_HS_SLAVE";
    "IL_FIFO_SLAVE";
    "DPRAM_comp";
    "DCT_IP";
    "FFT_IP";
    "IL_FFT_ADAPTER";
    "WATCHDOG";
    "PARITY_GEN";
    "PARITY_CHK";
  ]
