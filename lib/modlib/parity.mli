(** Even-parity generator/checker pair (library components [PARITY_GEN]
    and [PARITY_CHK]).

    The generator reduces [data] to one parity bit; the checker
    recomputes the reduction and raises [error] when it disagrees with
    the received bit.  Wired across the write-data lines of each
    generated bus when the [protection] option is on.

    Generator ports: input [data] (data_width), output [parity] (1).
    Checker ports: inputs [data] (data_width), [parity] (1), output
    [error] (1). *)

type role = Generator | Checker

type params = { data_width : int; role : role }

val module_name : params -> string

val create : params -> Busgen_rtl.Circuit.t
(** @raise Invalid_argument if [data_width < 1]. *)
