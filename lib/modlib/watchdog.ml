open Busgen_rtl

type params = { timeout : int }

let module_name p = Printf.sprintf "watchdog_t%d" p.timeout

(* Bus watchdog: counts cycles an asserted request ([req]) goes without
   an acknowledge ([ack]).  When the count reaches [timeout] the module
   fires a one-cycle [timeout] strobe and holds [force_release] so the
   arbiter (or top-level glue) can reclaim the bus from a wedged master.
   The counter clears whenever the request drops or is acknowledged. *)
let create p =
  if p.timeout < 1 then invalid_arg "Watchdog: timeout must be >= 1";
  let open Circuit.Builder in
  let open Expr in
  let b = create (module_name p) in
  let req = input b "req" 1 in
  let ack = input b "ack" 1 in
  output b "timeout" 1;
  output b "force_release" 1;
  let cw = Util.clog2 (p.timeout + 1) in
  let cnt = reg b "cnt" cw () in
  let fired = reg b "fired" 1 () in
  let pending = req &: ~:ack in
  let at_limit = cnt ==: const_int ~width:cw p.timeout in
  (* Saturate at the limit while the request stays unanswered, so the
     release stays asserted instead of wrapping back to quiescent. *)
  set_next b "cnt"
    (mux pending
       (mux at_limit cnt (cnt +: const_int ~width:cw 1))
       (const_int ~width:cw 0));
  set_next b "fired" (mux pending at_limit (const_int ~width:1 0));
  assign b "timeout" (at_limit &: ~:fired);
  assign b "force_release" at_limit;
  finish b
