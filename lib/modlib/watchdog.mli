(** Bus watchdog (library component [WATCHDOG]).

    Counts the cycles an asserted request goes unacknowledged; at
    [timeout] it fires a one-cycle [timeout] strobe and holds
    [force_release] until the request is answered or withdrawn.  Used by
    the generated architectures (behind the [protection] option) to
    guarantee a wedged bus transaction cannot hang the interconnect.

    Ports: inputs [req], [ack] (1 bit each); outputs [timeout] (strobe)
    and [force_release] (level). *)

type params = { timeout : int }  (** cycles a request may go unanswered *)

val module_name : params -> string

val create : params -> Busgen_rtl.Circuit.t
(** @raise Invalid_argument if [timeout < 1]. *)
