(** Combinational critical-path estimation, in gate levels.

    The companion of {!Area}: where [Area] substitutes for Design
    Compiler's gate counts, [Depth] substitutes for its timing report.
    Each operator contributes a technology-independent number of logic
    levels (and/or/mux = 1, xor = 1, comparator = [1 + log2 w], adder =
    [2 * log2 w] as a carry-lookahead, multiplier = Wallace tree plus
    final adder); wiring-only operations (select, concat, constant
    shifts) are free.  The design is flattened, so paths that cross
    instance boundaries combinationally are followed end to end;
    registers and memories terminate paths.

    The estimate is deliberately coarse — it ranks the generated bus
    systems against each other (e.g. how much combinational depth a
    bridge chain or a wide [Busjoin] adds) rather than predicting
    nanoseconds. *)

type report = {
  levels : int;          (** longest register-to-register / port-to-port path *)
  endpoint : string;     (** flat name of the signal ending that path *)
}

exception Combinational_cycle of string list
(** A dependency cycle among combinational nodes; the payload is the
    node names along the cycle, in dependency order. *)

val levelize : (string * string list) list -> (string * int) list
(** [levelize nodes] topologically orders combinational [nodes], each
    given as [(name, dependencies)].  Dependencies that are not
    themselves nodes (inputs, registers, memory words) are sources at
    level 0.  Returns every node paired with its level — [1 + max] of
    its dependencies' levels — in evaluation (dependency-first) order,
    so evaluating the returned sequence once settles the whole network
    without any fixed-point iteration.  The traversal is deterministic
    in the order of [nodes].
    @raise Combinational_cycle on a dependency cycle. *)

val of_circuit : Circuit.t -> report
(** Flatten the hierarchy and return the critical path.
    @raise Invalid_argument on combinational loops. *)

val expr_levels : env:(string -> int) -> (string -> int) -> Expr.t -> int
(** [expr_levels ~env depth_of_var e]: levels through one expression,
    where [env] gives signal widths and [depth_of_var] the depth already
    accumulated at each leaf variable.  Exposed for tests. *)

val pp_report : Format.formatter -> report -> unit
