(* Two representations behind one abstract type:

   - [S (width, v)]: widths up to 62 bits live in a single immediate OCaml
     int, [0 <= v < 2^width].  This is the dominant case in generated bus
     circuits (control signals, addresses, counters) and makes the
     interpreter hot path allocation-light: logic and arithmetic are one
     machine operation plus a mask.
   - [B (width, limbs)]: wider values fall back to little-endian 32-bit
     limbs packed in OCaml ints.

   Invariants: the representation is chosen by width alone (width <= 62
   is always [S]), [S] values are masked to the width, and the unused
   high bits of the top [B] limb are zero — so structural equality
   coincides with value equality. *)

let limb_bits = 32
let limb_mask = 0xFFFFFFFF
let small_limit = 62

type t =
  | S of int * int
  | B of int * int array

let nlimbs width = (width + limb_bits - 1) / limb_bits

(* Mask covering [w] low bits of an OCaml int, valid for 1 <= w <= 62
   ([1 lsl 62] wraps to [min_int], minus one gives [max_int] = 2^62-1). *)
let smask w = (1 lsl w) - 1

(* Mask covering the valid bits of the top limb. *)
let top_mask width =
  let r = width mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

let normalize_limbs width limbs =
  let n = Array.length limbs in
  if n > 0 then limbs.(n - 1) <- limbs.(n - 1) land top_mask width;
  B (width, limbs)

let check_width w =
  if w < 1 then invalid_arg (Printf.sprintf "Bits: width %d < 1" w)

let width = function S (w, _) -> w | B (w, _) -> w

let zero w =
  check_width w;
  if w <= small_limit then S (w, 0) else B (w, Array.make (nlimbs w) 0)

let of_int ~width v =
  check_width width;
  if width <= small_limit then S (width, v land smask width)
  else begin
    let limbs = Array.make (nlimbs width) 0 in
    (* Negative values wrap: replicate the sign bit through the high
       limbs. *)
    let fill = if v < 0 then limb_mask else 0 in
    for i = 0 to Array.length limbs - 1 do
      let shift = i * limb_bits in
      limbs.(i) <- (if shift >= 62 then fill else (v asr shift) land limb_mask)
    done;
    normalize_limbs width limbs
  end

let one w = of_int ~width:w 1

let ones w =
  check_width w;
  if w <= small_limit then S (w, smask w)
  else normalize_limbs w (Array.make (nlimbs w) limb_mask)

let of_bool b = S (1, if b then 1 else 0)

let bit t i =
  if i < 0 then invalid_arg "Bits.bit: negative index";
  match t with
  | S (w, v) -> i < w && (v lsr i) land 1 = 1
  | B (w, limbs) ->
      i < w && (limbs.(i / limb_bits) lsr (i mod limb_bits)) land 1 = 1

let is_zero = function
  | S (_, v) -> v = 0
  | B (_, limbs) -> Array.for_all (fun l -> l = 0) limbs

(* Zero-extended limb access, valid for both representations. *)
let limb t i =
  match t with
  | S (_, v) ->
      if i = 0 then v land limb_mask
      else if i = 1 then (v lsr limb_bits) land limb_mask
      else 0
  | B (_, limbs) -> if i < Array.length limbs then limbs.(i) else 0

let to_int_trunc = function
  | S (_, v) -> v
  | B (_, limbs) ->
      let v = ref 0 in
      let n = Array.length limbs in
      for i = min (n - 1) 1 downto 0 do
        v := (!v lsl limb_bits) lor limbs.(i)
      done;
      (* B is only used for widths > 62: keep the value non-negative. *)
      !v land max_int

let to_int_exn t =
  match t with
  | S (_, v) -> v
  | B (w, _) ->
      let fits = ref true in
      for i = 62 to w - 1 do
        if bit t i then fits := false
      done;
      if not !fits then invalid_arg "Bits.to_int_exn: value exceeds 62 bits";
      to_int_trunc t

let equal a b =
  match (a, b) with
  | S (wa, va), S (wb, vb) -> wa = wb && va = vb
  | B (wa, la), B (wb, lb) -> wa = wb && la = lb
  | S _, B _ | B _, S _ -> false (* widths necessarily differ *)

let compare a b =
  match (a, b) with
  | S (_, va), S (_, vb) -> Stdlib.compare va vb
  | _ ->
      let n = max (nlimbs (width a)) (nlimbs (width b)) in
      let rec go i =
        if i < 0 then 0
        else
          let la = limb a i and lb = limb b i in
          if la <> lb then Stdlib.compare la lb else go (i - 1)
      in
      go (n - 1)

let ult a b = compare a b < 0
let ule a b = compare a b <= 0

let to_binary_string t =
  let w = width t in
  String.init w (fun i -> if bit t (w - 1 - i) then '1' else '0')

let to_hex_string t =
  let digits = (width t + 3) / 4 in
  String.init digits (fun i ->
      let lo = (digits - 1 - i) * 4 in
      let v =
        (if bit t lo then 1 else 0)
        lor (if bit t (lo + 1) then 2 else 0)
        lor (if bit t (lo + 2) then 4 else 0)
        lor if bit t (lo + 3) then 8 else 0
      in
      "0123456789abcdef".[v])

let to_verilog_literal t = Printf.sprintf "%d'h%s" (width t) (to_hex_string t)
let pp fmt t = Format.pp_print_string fmt (to_verilog_literal t)

let init w f =
  check_width w;
  if w <= small_limit then begin
    let v = ref 0 in
    for i = w - 1 downto 0 do
      v := (!v lsl 1) lor (if f i then 1 else 0)
    done;
    S (w, !v)
  end
  else begin
    let limbs = Array.make (nlimbs w) 0 in
    for i = 0 to w - 1 do
      if f i then
        limbs.(i / limb_bits) <-
          limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
    done;
    B (w, limbs)
  end

(* Gather [w <= 62] bits starting at bit [lo] of [t] into one int. *)
let extract_small t lo w =
  match t with
  | S (_, v) -> (v lsr lo) land smask w
  | B _ ->
      let v = ref 0 in
      let pos = ref 0 in
      while !pos < w do
        let idx = lo + !pos in
        let chunk = limb t (idx / limb_bits) lsr (idx mod limb_bits) in
        let take = min (limb_bits - (idx mod limb_bits)) (w - !pos) in
        v := !v lor ((chunk land smask take) lsl !pos);
        pos := !pos + take
      done;
      !v

let concat hi lo =
  let wh = width hi and wl = width lo in
  let w = wh + wl in
  match (hi, lo) with
  | S (_, vh), S (_, vl) when w <= small_limit -> S (w, (vh lsl wl) lor vl)
  | _ -> init w (fun i -> if i < wl then bit lo i else bit hi (i - wl))

let concat_list = function
  | [] -> invalid_arg "Bits.concat_list: empty list"
  | v :: vs -> List.fold_left (fun acc x -> concat acc x) v vs

let select t hi lo =
  if lo < 0 || hi < lo || hi >= width t then
    invalid_arg
      (Printf.sprintf "Bits.select: [%d:%d] out of range for width %d" hi lo
         (width t));
  let w = hi - lo + 1 in
  if w <= small_limit then S (w, extract_small t lo w)
  else init w (fun i -> bit t (lo + i))

let resize t w =
  check_width w;
  if w = width t then t
  else if w <= small_limit then S (w, extract_small t 0 (min w (width t)))
  else init w (fun i -> bit t i)

let repeat t n =
  if n < 1 then invalid_arg "Bits.repeat: count < 1";
  let rec go acc k = if k = 1 then acc else go (concat acc t) (k - 1) in
  go t n

let width_mismatch op wa wb =
  invalid_arg (Printf.sprintf "Bits.%s: width mismatch %d vs %d" op wa wb)

let map2 name f a b =
  match (a, b) with
  | S (wa, va), S (wb, vb) ->
      if wa <> wb then width_mismatch name wa wb;
      (* and/or/xor of masked values stays masked. *)
      S (wa, f va vb)
  | B (wa, la), B (wb, lb) ->
      if wa <> wb then width_mismatch name wa wb;
      let r = Array.make (Array.length la) 0 in
      Array.iteri (fun i x -> r.(i) <- f x lb.(i) land limb_mask) la;
      normalize_limbs wa r
  | S (wa, _), B (wb, _) | B (wa, _), S (wb, _) -> width_mismatch name wa wb

let logand a b = map2 "logand" ( land ) a b
let logor a b = map2 "logor" ( lor ) a b
let logxor a b = map2 "logxor" ( lxor ) a b

let lognot = function
  | S (w, v) -> S (w, lnot v land smask w)
  | B (w, limbs) ->
      let r = Array.map (fun l -> lnot l land limb_mask) limbs in
      normalize_limbs w r

let reduce_or t = not (is_zero t)

let reduce_and = function
  | S (w, v) -> v = smask w
  | B (_, _) as t -> equal t (ones (width t))

let reduce_xor t =
  match t with
  | S (_, v) ->
      let x = v lxor (v lsr 32) in
      let x = x lxor (x lsr 16) in
      let x = x lxor (x lsr 8) in
      let x = x lxor (x lsr 4) in
      let x = x lxor (x lsr 2) in
      let x = x lxor (x lsr 1) in
      x land 1 = 1
  | B (w, _) ->
      let parity = ref false in
      for i = 0 to w - 1 do
        if bit t i then parity := not !parity
      done;
      !parity

let add a b =
  match (a, b) with
  | S (wa, va), S (wb, vb) ->
      if wa <> wb then width_mismatch "add" wa wb;
      (* OCaml int overflow wraps, so masking the low bits is exact. *)
      S (wa, (va + vb) land smask wa)
  | B (wa, la), B (wb, lb) ->
      if wa <> wb then width_mismatch "add" wa wb;
      let r = Array.make (Array.length la) 0 in
      let carry = ref 0 in
      Array.iteri
        (fun i x ->
          let s = x + lb.(i) + !carry in
          r.(i) <- s land limb_mask;
          carry := s lsr limb_bits)
        la;
      normalize_limbs wa r
  | S (wa, _), B (wb, _) | B (wa, _), S (wb, _) -> width_mismatch "add" wa wb

let sub a b =
  match (a, b) with
  | S (wa, va), S (wb, vb) ->
      if wa <> wb then width_mismatch "sub" wa wb;
      S (wa, (va - vb) land smask wa)
  | _ ->
      if width a <> width b then width_mismatch "sub" (width a) (width b);
      (* a - b = a + (~b) + 1, modulo 2^width *)
      add a (add (lognot b) (one (width a)))

let shift_left t k =
  if k < 0 then invalid_arg "Bits.shift_left: negative shift";
  match t with
  | S (w, v) -> if k >= w then S (w, 0) else S (w, (v lsl k) land smask w)
  | B (w, _) -> init w (fun i -> i >= k && bit t (i - k))

let shift_right t k =
  if k < 0 then invalid_arg "Bits.shift_right: negative shift";
  match t with
  | S (w, v) -> if k >= w then S (w, 0) else S (w, v lsr k)
  | B (w, _) -> init w (fun i -> bit t (i + k))

(* Schoolbook multiplication over 16-bit half-limbs so partial products fit
   comfortably in an OCaml int.  Small x small products that fit 62 bits
   are a single machine multiply. *)
let mul a b =
  let rw = width a + width b in
  match (a, b) with
  | S (_, va), S (_, vb) when rw <= small_limit -> S (rw, va * vb)
  | _ ->
      let halves t =
        Array.init
          (2 * nlimbs (width t))
          (fun i ->
            let l = limb t (i / 2) in
            if i mod 2 = 0 then l land 0xFFFF else l lsr 16)
      in
      let ha = halves a and hb = halves b in
      let acc = Array.make (Array.length ha + Array.length hb + 1) 0 in
      Array.iteri
        (fun i x ->
          if x <> 0 then
            Array.iteri
              (fun j y ->
                let p = x * y in
                acc.(i + j) <- acc.(i + j) + (p land 0xFFFF);
                acc.(i + j + 1) <- acc.(i + j + 1) + (p lsr 16))
              hb)
        ha;
      (* Propagate carries. *)
      let carry = ref 0 in
      Array.iteri
        (fun i v ->
          let s = v + !carry in
          acc.(i) <- s land 0xFFFF;
          carry := s lsr 16)
        acc;
      init rw (fun i ->
          let h = i / 16 in
          h < Array.length acc && (acc.(h) lsr (i mod 16)) land 1 = 1)

let smul a b =
  (* Sign-extend both operands to the result width, multiply unsigned,
     truncate: standard two's-complement product. *)
  let rw = width a + width b in
  let sext t =
    let w = width t in
    let sign = bit t (w - 1) in
    init rw (fun i -> if i < w then bit t i else sign)
  in
  resize (mul (sext a) (sext b)) rw

let to_signed_int_exn t =
  if bit t (width t - 1) then
    (* Negative: value - 2^width, computed on the complement. *)
    let mag = add (lognot t) (one (width t)) in
    -to_int_exn mag
  else to_int_exn t

let of_signed_int ~width v = of_int ~width v

let of_string s =
  let fail () = invalid_arg (Printf.sprintf "Bits.of_string: %S" s) in
  match String.index_opt s '\'' with
  | None -> fail ()
  | Some q ->
      let w = try int_of_string (String.sub s 0 q) with _ -> fail () in
      check_width w;
      if q + 1 >= String.length s then fail ();
      let base = s.[q + 1] in
      let body = String.sub s (q + 2) (String.length s - q - 2) in
      let digits =
        String.to_seq body |> Seq.filter (fun c -> c <> '_') |> List.of_seq
      in
      if digits = [] then fail ();
      let digit_val per_digit c =
        let v =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> 10 + Char.code c - Char.code 'a'
          | 'A' .. 'F' -> 10 + Char.code c - Char.code 'A'
          | _ -> fail ()
        in
        if v >= 1 lsl per_digit then fail () else v
      in
      let shift_in per_digit =
        List.fold_left
          (fun acc c ->
            logor (shift_left acc per_digit)
              (of_int ~width:w (digit_val per_digit c)))
          (zero w) digits
      in
      let value =
        match base with
        | 'b' | 'B' -> shift_in 1
        | 'h' | 'H' | 'x' | 'X' -> shift_in 4
        | 'd' | 'D' ->
            List.fold_left
              (fun acc c ->
                let ten = of_int ~width:w 10 in
                let acc10 = resize (mul acc ten) w in
                add acc10 (of_int ~width:w (digit_val 4 c)))
              (zero w) digits
        | _ -> fail ()
      in
      (* Reject literals whose digits do not fit the declared width. *)
      let needed_bits =
        match base with
        | 'b' | 'B' -> List.length digits
        | 'h' | 'H' | 'x' | 'X' -> 4 * List.length digits
        | _ -> 0
      in
      if needed_bits > w then begin
        (* Allowed only if the extra leading digits are zero. *)
        let wide =
          match base with
          | 'b' | 'B' | 'h' | 'H' | 'x' | 'X' ->
              let per = if base = 'b' || base = 'B' then 1 else 4 in
              List.fold_left
                (fun acc c ->
                  logor
                    (shift_left acc per)
                    (of_int ~width:needed_bits (digit_val per c)))
                (zero needed_bits) digits
          | _ -> assert false
        in
        if not (equal (resize wide w |> fun v -> resize v needed_bits) wide)
        then fail ()
      end;
      value
