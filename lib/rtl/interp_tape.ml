(* Tape-compiled evaluation engine with activity-based scheduling.

   Third engine in the ref -> slot -> tape lineage.  Where {!Interp}
   compiles every expression into a closure (one indirect call per
   operator per cycle), [create] here flattens the levelized schedule
   into one flat linear tape of pre-decoded ops: an int opcode plus up
   to four int operands per op, stored in parallel [int array]s.  The
   interpreter loop is a single [match] over an int — no closure
   dispatch, no expression-tree traversal, and for signals of width
   <= 62 bits (the dominant case in generated bus fabrics) no [Bits.t]
   boxing either: small values live unboxed in an [int array] and the
   ALU cases operate on them directly with the same mask discipline as
   {!Bits}.  Wide signals and corner-case ops fall back to [call] ops
   that invoke a closure over the exact {!Bits} operations, so the
   engine inherits the reference semantics (including error behavior)
   wherever the inline transcription would not be exactly faithful.

   On top of the tape sit two dynamic optimizations:

   - {b Activity-based evaluation}: a slot -> fanout map (in CSR form)
     is built at compile time.  When a register commit, [set_input],
     memory write or fault transform changes a value, only the
     dependent schedule nodes are marked dirty (bucketed by level) and
     re-evaluated, level by level; combinational cones whose inputs
     did not change are skipped entirely.  With faults active the
     engine falls back to full re-evaluation, mirroring {!Interp}'s
     semantics exactly.

   - {b Idle-stretch batching}: a step whose clock edge commits no
     register or memory change and leaves nothing dirty puts the
     engine in a [steady] state — a fixed point where every further
     step is the identity on all state.  [run] fast-forwards such
     stretches, firing observers with correct cycle numbers (they see
     the same settled values a real step would show), and drops out of
     the batch the moment an observer perturbs the simulation or a
     scheduled fault campaign comes due.

   Flattening goes through {!Interp.flatten}, so the flat-name
   universe, slot numbering and snapshot layout agree with the other
   engines by construction; {!Interp.state} snapshots interchange
   freely. *)

let small_limit = 62

(* Mask covering [w] low bits, valid for 1 <= w <= 62 (same wraparound
   trick as [Bits.smask]). *)
let smask w = (1 lsl w) - 1

(* ------------------------------------------------------------------ *)
(* Opcodes                                                             *)
(* ------------------------------------------------------------------ *)

(* Small (unboxed int) ops read/write [ivals]; [mov_w] reads/writes
   [bvals]; [call] dispatches to a closure.  Operand meaning per op is
   documented at the emit site and in the [exec] match arms. *)
let op_mov = 0
let op_and = 1
let op_or = 2
let op_xor = 3
let op_not = 4
let op_add = 5
let op_sub = 6
let op_mul = 7
let op_smul = 8
let op_eq = 9
let op_neq = 10
let op_ult = 11
let op_ule = 12
let op_red_or = 13
let op_red_and = 14
let op_red_xor = 15
let op_mux = 16
let op_select = 17
let op_cat = 18
let op_shl = 19
let op_shr = 20
let op_memread = 21
let op_call = 22
let op_mov_w = 23

(* ------------------------------------------------------------------ *)
(* Compile-time builder                                                *)
(* ------------------------------------------------------------------ *)

module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 256 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let a' = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 a' 0 v.n;
      v.a <- a'
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = v.a.(i)
  let length v = v.n
  let to_array v = Array.sub v.a 0 v.n
end

(* A call spec is instantiated into a [unit -> unit] thunk once the
   value arrays exist. *)
type call_spec = int array -> Bits.t array -> unit -> unit

type builder = {
  b_widths : Ivec.t; (* cell -> width *)
  c_code : Ivec.t;
  c_dst : Ivec.t;
  c_a : Ivec.t;
  c_b : Ivec.t;
  c_c : Ivec.t;
  c_m : Ivec.t;
  mutable b_calls : call_spec list; (* newest first *)
  mutable b_ncalls : int;
  mutable b_consts : (int * Bits.t) list; (* cell -> prefilled value *)
}

let builder () =
  {
    b_widths = Ivec.create ();
    c_code = Ivec.create ();
    c_dst = Ivec.create ();
    c_a = Ivec.create ();
    c_b = Ivec.create ();
    c_c = Ivec.create ();
    c_m = Ivec.create ();
    b_calls = [];
    b_ncalls = 0;
    b_consts = [];
  }

let new_cell b w =
  let c = Ivec.length b.b_widths in
  Ivec.push b.b_widths w;
  c

let cell_w b c = Ivec.get b.b_widths c
let cell_small b c = cell_w b c <= small_limit

let emit b code dst a b_ c m =
  Ivec.push b.c_code code;
  Ivec.push b.c_dst dst;
  Ivec.push b.c_a a;
  Ivec.push b.c_b b_;
  Ivec.push b.c_c c;
  Ivec.push b.c_m m

(* Accessors used by [call] closures: the cell's representation is
   fixed at compile time, the array binding at instantiation time. *)
let getter b c : int array -> Bits.t array -> unit -> Bits.t =
  let w = cell_w b c in
  if w <= small_limit then fun iv _bv () -> Bits.of_int ~width:w iv.(c)
  else fun _iv bv () -> bv.(c)

let setter b c : int array -> Bits.t array -> Bits.t -> unit =
  let w = cell_w b c in
  if w <= small_limit then fun iv _bv v -> iv.(c) <- Bits.to_int_trunc v
  else fun _iv bv v -> bv.(c) <- v

let emit_call b dst spec =
  let idx = b.b_ncalls in
  b.b_calls <- spec :: b.b_calls;
  b.b_ncalls <- idx + 1;
  emit b op_call dst idx 0 0 0

let const_cell b v =
  let c = new_cell b (Bits.width v) in
  b.b_consts <- (c, v) :: b.b_consts;
  c

let width_err what rw wd =
  invalid_arg
    (Printf.sprintf
       "Interp_tape: %s: expression width %d does not match target width %d"
       what rw wd)

(* Emit a move [dst <- src] (same width both sides). *)
let emit_move b dst src =
  if cell_small b dst then emit b op_mov dst src 0 0 0
  else emit b op_mov_w dst src 0 0 0

(* Compile [e], leaving its value in the returned cell.  [var] resolves
   signal leaves to their cells.  With [dsto = Some d] the result is
   forced into [d], whose declared width must match the expression's —
   generated circuits are width-correct, and a mismatch here is a
   create-time error rather than a silent truncation.  Operators whose
   inline int transcription would not be exactly {!Bits}-faithful
   (wide operands, out-of-range selects, negative shifts, mismatched
   widths) are emitted as [call] ops over the real {!Bits} functions,
   preserving both values and error behavior. *)
let rec comp_to b ~var ~what dsto (e : Expr.t) : int =
  let target rw =
    match dsto with
    | None -> new_cell b rw
    | Some d ->
        if cell_w b d <> rw then width_err what rw (cell_w b d);
        d
  in
  let comp e = comp_to b ~var ~what None e in
  let call1 dst f a =
    let ga = getter b a and set = setter b dst in
    emit_call b dst (fun iv bv ->
        let ga = ga iv bv in
        fun () -> set iv bv (f (ga ())))
  in
  let call2 dst f a c =
    let ga = getter b a and gc = getter b c and set = setter b dst in
    emit_call b dst (fun iv bv ->
        let ga = ga iv bv and gc = gc iv bv in
        fun () -> set iv bv (f (ga ()) (gc ())))
  in
  match e with
  | Expr.Var v -> (
      let s = var v in
      match dsto with
      | None -> s
      | Some d ->
          let wd = cell_w b d and ws = cell_w b s in
          if wd <> ws then width_err what ws wd;
          emit_move b d s;
          d)
  | Expr.Const v -> (
      match dsto with
      | None -> const_cell b v
      | Some d ->
          if cell_w b d <> Bits.width v then
            width_err what (Bits.width v) (cell_w b d);
          emit_move b d (const_cell b v);
          d)
  | Expr.Select (e0, hi, lo) ->
      let a = comp e0 in
      let wa = cell_w b a in
      if lo < 0 || hi < lo || hi >= wa then begin
        (* [Bits.select] raises at evaluation; keep its exact behavior
           (the error surfaces during [create]'s initial settle, as it
           does in the other engines). *)
        let d = target (max 1 (hi - lo + 1)) in
        call1 d (fun v -> Bits.select v hi lo) a;
        d
      end
      else begin
        let rw = hi - lo + 1 in
        let d = target rw in
        if cell_small b a then emit b op_select d a lo 0 (smask rw)
        else call1 d (fun v -> Bits.select v hi lo) a;
        d
      end
  | Expr.Concat [] -> invalid_arg "Interp_tape: empty concat"
  | Expr.Concat [ e0 ] -> comp_to b ~var ~what dsto e0
  | Expr.Concat (e0 :: rest) ->
      (* MSB-first fold, like the other engines: acc = concat acc next. *)
      let first = comp e0 in
      let cells = List.map comp rest in
      let rec chain acc = function
        | [] -> acc
        | c :: tl ->
            let wa = cell_w b acc and wc = cell_w b c in
            let rw = wa + wc in
            let d = match tl with [] -> target rw | _ -> new_cell b rw in
            if rw <= small_limit && cell_small b acc && cell_small b c then
              emit b op_cat d acc c wc 0
            else call2 d Bits.concat acc c;
            chain d tl
      in
      chain first cells
  | Expr.Unop (op, e0) -> (
      let a = comp e0 in
      let wa = cell_w b a in
      let small = wa <= small_limit in
      match op with
      | Expr.Not ->
          let d = target wa in
          if small then emit b op_not d a 0 0 (smask wa)
          else call1 d Bits.lognot a;
          d
      | Expr.Reduce_or ->
          let d = target 1 in
          if small then emit b op_red_or d a 0 0 0
          else call1 d (fun v -> Bits.of_bool (Bits.reduce_or v)) a;
          d
      | Expr.Reduce_and ->
          let d = target 1 in
          if small then emit b op_red_and d a 0 0 (smask wa)
          else call1 d (fun v -> Bits.of_bool (Bits.reduce_and v)) a;
          d
      | Expr.Reduce_xor ->
          let d = target 1 in
          if small then emit b op_red_xor d a 0 0 0
          else call1 d (fun v -> Bits.of_bool (Bits.reduce_xor v)) a;
          d)
  | Expr.Binop (op, ea, eb) -> (
      let a = comp ea and c = comp eb in
      let wa = cell_w b a and wb = cell_w b c in
      let both_small = wa <= small_limit && wb <= small_limit in
      let same_small = both_small && wa = wb in
      let logical code f =
        let d = target wa in
        if same_small then emit b code d a c 0 0 else call2 d f a c;
        d
      in
      let arith code f =
        let d = target wa in
        if same_small then emit b code d a c 0 (smask wa) else call2 d f a c;
        d
      in
      (* [Bits.equal] is width-sensitive (mismatched widths compare
         unequal without raising); ult/ule are plain numeric compares
         for small values regardless of width. *)
      let cmp code inline f =
        let d = target 1 in
        if inline then emit b code d a c 0 0
        else call2 d (fun x y -> Bits.of_bool (f x y)) a c;
        d
      in
      match op with
      | Expr.And -> logical op_and Bits.logand
      | Expr.Or -> logical op_or Bits.logor
      | Expr.Xor -> logical op_xor Bits.logxor
      | Expr.Add -> arith op_add Bits.add
      | Expr.Sub -> arith op_sub Bits.sub
      | Expr.Mul ->
          let rw = wa + wb in
          let d = target rw in
          if rw <= small_limit then emit b op_mul d a c 0 0
          else call2 d Bits.mul a c;
          d
      | Expr.Smul ->
          let rw = wa + wb in
          let d = target rw in
          if rw <= small_limit then
            emit b op_smul d a c ((wa lsl 8) lor wb) (smask rw)
          else call2 d Bits.smul a c;
          d
      | Expr.Eq -> cmp op_eq same_small Bits.equal
      | Expr.Neq -> cmp op_neq same_small (fun x y -> not (Bits.equal x y))
      | Expr.Ult -> cmp op_ult both_small Bits.ult
      | Expr.Ule -> cmp op_ule both_small Bits.ule)
  | Expr.Mux (ec, ea, eb) ->
      let c = comp ec and a = comp ea and e_ = comp eb in
      let wa = cell_w b a and wb = cell_w b e_ in
      if wa <> wb then width_err what wb wa;
      let d = target wa in
      if cell_small b c && cell_small b a && cell_small b e_ then
        emit b op_mux d c a e_ 0
      else begin
        let gc = getter b c
        and ga = getter b a
        and gb = getter b e_
        and set = setter b d in
        emit_call b d (fun iv bv ->
            let gc = gc iv bv and ga = ga iv bv and gb = gb iv bv in
            fun () ->
              set iv bv (if Bits.reduce_or (gc ()) then ga () else gb ()))
      end;
      d
  | Expr.Shift_left (e0, k) ->
      let a = comp e0 in
      let wa = cell_w b a in
      let d = target wa in
      if k < 0 || wa > small_limit then call1 d (fun v -> Bits.shift_left v k) a
      else if k >= wa then emit_move b d (const_cell b (Bits.zero wa))
      else emit b op_shl d a k 0 (smask wa);
      d
  | Expr.Shift_right (e0, k) ->
      let a = comp e0 in
      let wa = cell_w b a in
      let d = target wa in
      if k < 0 || wa > small_limit then
        call1 d (fun v -> Bits.shift_right v k) a
      else if k >= wa then emit_move b d (const_cell b (Bits.zero wa))
      else emit b op_shr d a k 0 0;
      d

(* ------------------------------------------------------------------ *)
(* Runtime state                                                       *)
(* ------------------------------------------------------------------ *)

type twrite = { tw_we : int; tw_addr : int; tw_data : int } (* cells *)

type tmem = {
  tm_name : string;
  tm_width : int;
  tm_depth : int;
  tm_init : Bits.t array;
  tm_arr : Bits.t array;
  tm_writes : twrite array;
  tm_index : int;
}

type treg = { tr_slot : int; tr_init : Bits.t; tr_next : int (* cell *) }

type cinj = {
  ci_slot : int;
  ci_fault : Interp.fault;
  ci_start : int;
  ci_stop : int; (* exclusive *)
  ci_driven : bool;
}

type t = {
  slots : (string, int) Hashtbl.t;
  names : string array; (* slot -> flat name *)
  top_inputs : (string, int) Hashtbl.t;
  n_sig : int;
  (* Cells: [0, n_sig) are the flat signals in declaration order;
     higher indices are constants, register-next values, memory-port
     samples and expression temporaries. *)
  widths : int array;
  wide : bool array;
  ivals : int array; (* small cells, masked to width *)
  bvals : Bits.t array; (* wide cells *)
  (* The tape. *)
  code : int array;
  o_dst : int array;
  o_a : int array;
  o_b : int array;
  o_c : int array;
  o_m : int array;
  calls : (unit -> unit) array;
  comb_hi : int; (* ops [0, comb_hi) = levelized combinational schedule *)
  edge_lo : int;
  edge_hi : int; (* ops [edge_lo, edge_hi) = pre-edge sampling *)
  (* Schedule nodes (one per combinational target, in level order). *)
  node_slot : int array;
  node_lo : int array;
  node_hi : int array;
  node_level : int array;
  (* slot -> dependent nodes, CSR. *)
  fan_off : int array;
  fan_nodes : int array;
  (* memory index -> read-port nodes, CSR. *)
  mem_fan_off : int array;
  mem_fan_nodes : int array;
  regs : treg array;
  mems : tmem array;
  mem_arrs : Bits.t array array;
  arrays : (string, Bits.t array) Hashtbl.t;
  mem_index : (string, int) Hashtbl.t;
  driven : bool array;
  (* Dirty-node machinery: one bucket per level. *)
  buckets : int array array;
  bucket_len : int array;
  node_dirty : bool array;
  mutable have_dirty : bool;
  mutable all_dirty : bool;
  (* Idle-stretch batching: [steady] means the simulation is at a fixed
     point — a further [step] changes nothing but the cycle counter. *)
  mutable steady : bool;
  mutable cycle : int;
  mutable injections : cinj array;
  mutable inj_pending : cinj list; (* newest first *)
  active : (int, Interp.fault) Hashtbl.t;
  mutable n_active : int;
  mutable observers : (int -> unit) array;
  mutable obs_pending : (int -> unit) list; (* newest first *)
}

let get_cell t c =
  if t.wide.(c) then t.bvals.(c)
  else Bits.of_int ~width:t.widths.(c) t.ivals.(c)

let set_cell t c v =
  if t.wide.(c) then t.bvals.(c) <- v else t.ivals.(c) <- Bits.to_int_trunc v

let cell_truthy t c =
  if t.wide.(c) then Bits.reduce_or t.bvals.(c) else t.ivals.(c) <> 0

let cell_trunc t c =
  if t.wide.(c) then Bits.to_int_trunc t.bvals.(c) else t.ivals.(c)

(* ------------------------------------------------------------------ *)
(* The interpreter loop                                                *)
(* ------------------------------------------------------------------ *)

let exec t lo hi =
  let code = t.code
  and od = t.o_dst
  and oa = t.o_a
  and ob = t.o_b
  and oc = t.o_c
  and om = t.o_m in
  let iv = t.ivals and bv = t.bvals in
  for i = lo to hi - 1 do
    let dst = Array.unsafe_get od i in
    let a = Array.unsafe_get oa i in
    match Array.unsafe_get code i with
    | 0 (* mov *) -> Array.unsafe_set iv dst (Array.unsafe_get iv a)
    | 1 (* and *) ->
        Array.unsafe_set iv dst
          (Array.unsafe_get iv a
          land Array.unsafe_get iv (Array.unsafe_get ob i))
    | 2 (* or *) ->
        Array.unsafe_set iv dst
          (Array.unsafe_get iv a
          lor Array.unsafe_get iv (Array.unsafe_get ob i))
    | 3 (* xor *) ->
        Array.unsafe_set iv dst
          (Array.unsafe_get iv a
          lxor Array.unsafe_get iv (Array.unsafe_get ob i))
    | 4 (* not *) ->
        Array.unsafe_set iv dst
          (lnot (Array.unsafe_get iv a) land Array.unsafe_get om i)
    | 5 (* add *) ->
        Array.unsafe_set iv dst
          ((Array.unsafe_get iv a + Array.unsafe_get iv (Array.unsafe_get ob i))
          land Array.unsafe_get om i)
    | 6 (* sub *) ->
        Array.unsafe_set iv dst
          ((Array.unsafe_get iv a - Array.unsafe_get iv (Array.unsafe_get ob i))
          land Array.unsafe_get om i)
    | 7 (* mul: result width = wa + wb <= 62, so the product fits *) ->
        Array.unsafe_set iv dst
          (Array.unsafe_get iv a * Array.unsafe_get iv (Array.unsafe_get ob i))
    | 8 (* smul: c = (wa lsl 8) lor wb; sign-extend, multiply, mask *) ->
        let spec = Array.unsafe_get oc i in
        let wa = spec lsr 8 and wb = spec land 0xFF in
        let va = Array.unsafe_get iv a in
        let vb = Array.unsafe_get iv (Array.unsafe_get ob i) in
        let sa = if (va lsr (wa - 1)) land 1 = 1 then va - (1 lsl wa) else va in
        let sb = if (vb lsr (wb - 1)) land 1 = 1 then vb - (1 lsl wb) else vb in
        Array.unsafe_set iv dst (sa * sb land Array.unsafe_get om i)
    | 9 (* eq *) ->
        Array.unsafe_set iv dst
          (if
             Array.unsafe_get iv a = Array.unsafe_get iv (Array.unsafe_get ob i)
           then 1
           else 0)
    | 10 (* neq *) ->
        Array.unsafe_set iv dst
          (if
             Array.unsafe_get iv a = Array.unsafe_get iv (Array.unsafe_get ob i)
           then 0
           else 1)
    | 11 (* ult *) ->
        Array.unsafe_set iv dst
          (if
             Array.unsafe_get iv a < Array.unsafe_get iv (Array.unsafe_get ob i)
           then 1
           else 0)
    | 12 (* ule *) ->
        Array.unsafe_set iv dst
          (if
             Array.unsafe_get iv a
             <= Array.unsafe_get iv (Array.unsafe_get ob i)
           then 1
           else 0)
    | 13 (* red_or *) ->
        Array.unsafe_set iv dst (if Array.unsafe_get iv a <> 0 then 1 else 0)
    | 14 (* red_and: m = mask of the operand width *) ->
        Array.unsafe_set iv dst
          (if Array.unsafe_get iv a = Array.unsafe_get om i then 1 else 0)
    | 15 (* red_xor *) ->
        let v = Array.unsafe_get iv a in
        let x = v lxor (v lsr 32) in
        let x = x lxor (x lsr 16) in
        let x = x lxor (x lsr 8) in
        let x = x lxor (x lsr 4) in
        let x = x lxor (x lsr 2) in
        let x = x lxor (x lsr 1) in
        Array.unsafe_set iv dst (x land 1)
    | 16 (* mux: a = cond, b = then, c = else *) ->
        Array.unsafe_set iv dst
          (if Array.unsafe_get iv a <> 0 then
             Array.unsafe_get iv (Array.unsafe_get ob i)
           else Array.unsafe_get iv (Array.unsafe_get oc i))
    | 17 (* select: b = lo, m = mask of the result width *) ->
        Array.unsafe_set iv dst
          ((Array.unsafe_get iv a lsr Array.unsafe_get ob i)
          land Array.unsafe_get om i)
    | 18 (* cat: a = high, b = low, c = width of low *) ->
        Array.unsafe_set iv dst
          ((Array.unsafe_get iv a lsl Array.unsafe_get oc i)
          lor Array.unsafe_get iv (Array.unsafe_get ob i))
    | 19 (* shl: b = count, m = mask *) ->
        Array.unsafe_set iv dst
          ((Array.unsafe_get iv a lsl Array.unsafe_get ob i)
          land Array.unsafe_get om i)
    | 20 (* shr: b = count *) ->
        Array.unsafe_set iv dst
          (Array.unsafe_get iv a lsr Array.unsafe_get ob i)
    | 21 (* memread: a = addr cell, b = memory index, c = depth *) ->
        let addr = Array.unsafe_get iv a in
        Array.unsafe_set iv dst
          (if addr < Array.unsafe_get oc i then
             Bits.to_int_trunc
               (Array.unsafe_get
                  (Array.unsafe_get t.mem_arrs (Array.unsafe_get ob i))
                  addr)
           else 0)
    | 22 (* call *) -> (Array.unsafe_get t.calls a) ()
    | _ (* mov_w *) -> Array.unsafe_set bv dst (Array.unsafe_get bv a)
  done

(* ------------------------------------------------------------------ *)
(* Dirty-set machinery                                                 *)
(* ------------------------------------------------------------------ *)

let mark_node t nd =
  if not t.node_dirty.(nd) then begin
    t.node_dirty.(nd) <- true;
    let lev = t.node_level.(nd) in
    let bk = t.buckets.(lev) in
    bk.(t.bucket_len.(lev)) <- nd;
    t.bucket_len.(lev) <- t.bucket_len.(lev) + 1
  end

let dirty_fanout t s =
  let lo = t.fan_off.(s) and hi = t.fan_off.(s + 1) in
  if lo < hi then begin
    t.have_dirty <- true;
    for k = lo to hi - 1 do
      mark_node t t.fan_nodes.(k)
    done
  end

let dirty_mem_fanout t mi =
  let lo = t.mem_fan_off.(mi) and hi = t.mem_fan_off.(mi + 1) in
  if lo < hi then begin
    t.have_dirty <- true;
    for k = lo to hi - 1 do
      mark_node t t.mem_fan_nodes.(k)
    done
  end

let eval_node t nd =
  let s = t.node_slot.(nd) in
  if t.wide.(s) then begin
    let old = t.bvals.(s) in
    exec t t.node_lo.(nd) t.node_hi.(nd);
    if not (Bits.equal old t.bvals.(s)) then dirty_fanout t s
  end
  else begin
    let old = t.ivals.(s) in
    exec t t.node_lo.(nd) t.node_hi.(nd);
    if t.ivals.(s) <> old then dirty_fanout t s
  end

let clear_dirty t =
  if t.have_dirty then begin
    for lev = 0 to Array.length t.bucket_len - 1 do
      let len = t.bucket_len.(lev) in
      if len > 0 then begin
        let bk = t.buckets.(lev) in
        for i = 0 to len - 1 do
          t.node_dirty.(bk.(i)) <- false
        done;
        t.bucket_len.(lev) <- 0
      end
    done;
    t.have_dirty <- false
  end

(* A producer always has a strictly lower level than its consumers, so
   an ascending level sweep is exhaustive: marks generated while
   processing level L land in buckets above L only. *)
let settle_dirty t =
  for lev = 0 to Array.length t.bucket_len - 1 do
    let len = t.bucket_len.(lev) in
    if len > 0 then begin
      let bk = t.buckets.(lev) in
      for i = 0 to len - 1 do
        let nd = bk.(i) in
        t.node_dirty.(nd) <- false;
        eval_node t nd
      done;
      t.bucket_len.(lev) <- 0
    end
  done;
  t.have_dirty <- false

(* Full re-evaluation with fault transforms, mirroring [Interp.settle]'s
   faulted branch: every node in schedule order, transform after. *)
let settle_full_faulty t =
  for nd = 0 to Array.length t.node_slot - 1 do
    exec t t.node_lo.(nd) t.node_hi.(nd);
    let s = t.node_slot.(nd) in
    match Hashtbl.find_opt t.active s with
    | None -> ()
    | Some f -> set_cell t s (Interp.apply_fault f (get_cell t s))
  done

let settle t =
  if t.n_active > 0 then begin
    clear_dirty t;
    settle_full_faulty t;
    (* Faulted values overwrote parts of the network: recompute
       everything once the faults lift. *)
    t.all_dirty <- true
  end
  else if t.all_dirty then begin
    clear_dirty t;
    exec t 0 t.comb_hi;
    t.all_dirty <- false
  end
  else if t.have_dirty then settle_dirty t

(* ------------------------------------------------------------------ *)
(* Clock edge                                                          *)
(* ------------------------------------------------------------------ *)

(* Returns [true] when the edge was the identity: no register or memory
   word changed value. *)
let clock_edge t =
  (* Sample every register next and memory port with pre-edge values
     (their target cells are private, so the tape segment cannot
     disturb the pre-edge signal values), then commit. *)
  exec t t.edge_lo t.edge_hi;
  let regs = t.regs in
  if t.n_active > 0 then
    for i = 0 to Array.length regs - 1 do
      let r = Array.unsafe_get regs i in
      match Hashtbl.find_opt t.active r.tr_slot with
      | None -> ()
      | Some f ->
          set_cell t r.tr_next (Interp.apply_fault f (get_cell t r.tr_next))
    done;
  let quiet = ref true in
  for i = 0 to Array.length regs - 1 do
    let r = Array.unsafe_get regs i in
    let s = r.tr_slot and nc = r.tr_next in
    if t.wide.(s) then begin
      let v = t.bvals.(nc) in
      if not (Bits.equal t.bvals.(s) v) then begin
        t.bvals.(s) <- v;
        quiet := false;
        dirty_fanout t s
      end
    end
    else begin
      let v = t.ivals.(nc) in
      if t.ivals.(s) <> v then begin
        t.ivals.(s) <- v;
        quiet := false;
        dirty_fanout t s
      end
    end
  done;
  Array.iter
    (fun m ->
      let touched = ref false in
      Array.iter
        (fun w ->
          if cell_truthy t w.tw_we then begin
            let addr = cell_trunc t w.tw_addr in
            if addr < m.tm_depth then begin
              let data = get_cell t w.tw_data in
              if not (Bits.equal m.tm_arr.(addr) data) then begin
                m.tm_arr.(addr) <- data;
                touched := true
              end
            end
          end)
        m.tm_writes;
      if !touched then begin
        quiet := false;
        dirty_mem_fanout t m.tm_index
      end)
    t.mems;
  !quiet

(* ------------------------------------------------------------------ *)
(* Observers / injections: O(1) registration, batch materialization    *)
(* ------------------------------------------------------------------ *)

let materialize_observers t =
  (match t.obs_pending with
  | [] -> ()
  | pending ->
      t.observers <-
        Array.append t.observers (Array.of_list (List.rev pending));
      t.obs_pending <- []);
  t.observers

let materialize_injections t =
  match t.inj_pending with
  | [] -> ()
  | pending ->
      t.injections <-
        Array.append t.injections (Array.of_list (List.rev pending));
      t.inj_pending <- []

let refresh_active t =
  materialize_injections t;
  if Array.length t.injections > 0 || t.n_active > 0 then begin
    let was_active = t.n_active > 0 in
    Hashtbl.reset t.active;
    t.n_active <- 0;
    Array.iter
      (fun ci ->
        if t.cycle >= ci.ci_start && t.cycle < ci.ci_stop then begin
          Hashtbl.replace t.active ci.ci_slot ci.ci_fault;
          t.n_active <- t.n_active + 1;
          if not ci.ci_driven then begin
            match ci.ci_fault with
            | Interp.Flip _ when t.cycle > ci.ci_start -> ()
            | f ->
                let s = ci.ci_slot in
                set_cell t s (Interp.apply_fault f (get_cell t s));
                dirty_fanout t s
          end
        end)
      t.injections;
    if t.n_active > 0 || was_active then begin
      t.all_dirty <- true;
      t.steady <- false
    end
  end

let no_pending t =
  (match t.obs_pending with [] -> true | _ -> false)
  && match t.inj_pending with [] -> true | _ -> false

let step t =
  refresh_active t;
  settle t;
  (* Sampling point: observers see the settled pre-edge values, faults
     included — same as the other engines. *)
  (let obs = materialize_observers t in
   if Array.length obs > 0 then
     for i = 0 to Array.length obs - 1 do
       (Array.unsafe_get obs i) t.cycle
     done);
  let quiet = clock_edge t in
  settle t;
  t.cycle <- t.cycle + 1;
  t.steady <-
    quiet
    && (not t.have_dirty)
    && (not t.all_dirty)
    && t.n_active = 0 && no_pending t

(* Earliest cycle at which the installed campaign could (re)activate a
   fault, or [max_int].  Defensive: a window already covering the
   current cycle pins the limit at the current cycle, forcing a real
   step (which activates it via [refresh_active]). *)
let next_inj_start t =
  let best = ref max_int in
  Array.iter
    (fun ci ->
      if ci.ci_stop > t.cycle then
        if ci.ci_start <= t.cycle then best := t.cycle
        else if ci.ci_start < !best then best := ci.ci_start)
    t.injections;
  !best

let run t n =
  let stop = t.cycle + n in
  while t.cycle < stop do
    if not t.steady then step t
    else begin
      materialize_injections t;
      let limit = min stop (next_inj_start t) in
      if limit <= t.cycle then step t
      else begin
        let obs = materialize_observers t in
        if Array.length obs = 0 then t.cycle <- limit
        else begin
          (* Batched stretch: the state is a fixed point, so observers
             see exactly what a real step would show at each cycle.  If
             an observer perturbs the simulation ([set_input], [inject],
             [poke_mem], or registering another observer), finish the
             current cycle as a real step — the pre-observer phases
             (refresh, settle) were no-ops by steadiness — and drop out
             of the batch. *)
          let continue_ = ref true in
          while !continue_ && t.cycle < limit do
            for i = 0 to Array.length obs - 1 do
              (Array.unsafe_get obs i) t.cycle
            done;
            if t.steady && no_pending t then t.cycle <- t.cycle + 1
            else begin
              let quiet = clock_edge t in
              settle t;
              t.cycle <- t.cycle + 1;
              t.steady <-
                quiet
                && (not t.have_dirty)
                && (not t.all_dirty)
                && t.n_active = 0 && no_pending t;
              continue_ := false
            end
          done
        end
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create top =
  let decls, input_widths, assigns, fregs, fmems = Interp.flatten top in
  let n_sig = List.length decls in
  let b = builder () in
  (* Cells [0, n_sig): one per flat signal, in declaration order. *)
  List.iter (fun (_, w) -> ignore (new_cell b w)) decls;
  let slots = Hashtbl.create (2 * n_sig) in
  let names = Array.make (max 1 n_sig) "" in
  List.iteri
    (fun i (name, _) ->
      Hashtbl.replace slots name i;
      names.(i) <- name)
    decls;
  let slot name =
    match Hashtbl.find_opt slots name with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Interp_tape: unknown signal %s" name)
  in
  (* Memory storage (allocated before compilation so memread [call]
     fallbacks can capture the arrays directly). *)
  let arrays = Hashtbl.create 8 in
  let mem_index = Hashtbl.create 8 in
  let fmems_arr = Array.of_list fmems in
  let n_mems = Array.length fmems_arr in
  let mem_arrs =
    Array.map
      (fun (m : Interp.flat_mem) ->
        let arr =
          Array.init m.fm_depth (fun i ->
              if i < Array.length m.fm_init then m.fm_init.(i)
              else Bits.zero m.fm_width)
        in
        Hashtbl.replace arrays m.fm_name arr;
        arr)
      fmems_arr
  in
  Array.iteri
    (fun i (m : Interp.flat_mem) -> Hashtbl.replace mem_index m.fm_name i)
    fmems_arr;
  (* Levelize combinational assignments plus memory read ports, exactly
     as {!Interp} does, so the evaluation order agrees. *)
  let node_bodies = Hashtbl.create (2 * List.length assigns) in
  List.iter
    (fun (tgt, e) -> Hashtbl.replace node_bodies tgt (`Assign e))
    assigns;
  Array.iteri
    (fun mi (m : Interp.flat_mem) ->
      List.iter
        (fun (rd, a) -> Hashtbl.replace node_bodies rd (`Memread (mi, a)))
        m.fm_reads)
    fmems_arr;
  let graph =
    List.map (fun (tgt, e) -> (tgt, Expr.vars e)) assigns
    @ List.concat_map
        (fun (m : Interp.flat_mem) ->
          List.map (fun (rd, a) -> (rd, Expr.vars a)) m.fm_reads)
        fmems
  in
  let order =
    try Depth.levelize graph
    with Depth.Combinational_cycle cycle ->
      invalid_arg
        ("Interp_tape: combinational loop: " ^ String.concat " -> " cycle)
  in
  let nodes = Array.of_list order in
  let n_nodes = Array.length nodes in
  let node_slot = Array.make (max 1 n_nodes) 0 in
  let node_lo = Array.make (max 1 n_nodes) 0 in
  let node_hi = Array.make (max 1 n_nodes) 0 in
  let node_level = Array.make (max 1 n_nodes) 0 in
  let node_vars = Array.make (max 1 n_nodes) [] in
  let node_mem = Array.make (max 1 n_nodes) (-1) in
  Array.iteri
    (fun i (name, level) ->
      node_lo.(i) <- Ivec.length b.c_code;
      (match Hashtbl.find node_bodies name with
      | `Assign e ->
          ignore (comp_to b ~var:slot ~what:name (Some (slot name)) e);
          node_vars.(i) <- Expr.vars e
      | `Memread (mi, a) ->
          let m = fmems_arr.(mi) in
          let addr = comp_to b ~var:slot ~what:name None a in
          let d = slot name in
          if cell_w b d <> m.fm_width then width_err name m.fm_width (cell_w b d);
          if cell_small b addr && m.fm_width <= small_limit then
            emit b op_memread d addr mi m.fm_depth 0
          else begin
            let ga = getter b addr and set = setter b d in
            let arr = mem_arrs.(mi) in
            let depth = m.fm_depth in
            let z = Bits.zero m.fm_width in
            emit_call b d (fun iv bv ->
                let ga = ga iv bv in
                fun () ->
                  let a = Bits.to_int_trunc (ga ()) in
                  set iv bv (if a < depth then arr.(a) else z))
          end;
          node_vars.(i) <- Expr.vars a;
          node_mem.(i) <- mi);
      node_hi.(i) <- Ivec.length b.c_code;
      node_slot.(i) <- slot name;
      node_level.(i) <- level)
    nodes;
  let comb_hi = Ivec.length b.c_code in
  (* Clock-edge sampling segment: register nexts, then memory ports. *)
  let edge_lo = comb_hi in
  let regs =
    Array.of_list
      (List.map
         (fun (r : Interp.flat_reg) ->
           let s = slot r.fr_name in
           let w = cell_w b s in
           if Bits.width r.fr_init <> w then
             invalid_arg
               (Printf.sprintf
                  "Interp_tape: register %s: init width %d does not match \
                   declared width %d"
                  r.fr_name (Bits.width r.fr_init) w);
           let nc = new_cell b w in
           ignore
             (comp_to b ~var:slot
                ~what:("next of " ^ r.fr_name)
                (Some nc) r.fr_next);
           { tr_slot = s; tr_init = r.fr_init; tr_next = nc })
         fregs)
  in
  let mems =
    Array.mapi
      (fun mi (m : Interp.flat_mem) ->
        let writes =
          Array.of_list
            (List.map
               (fun (w : Circuit.mem_write) ->
                 (* Sample into private cells: a bare [Var] compiles to
                    the slot cell itself, and the commit loop runs after
                    registers commit — reading a register's slot there
                    would observe the post-edge value.  [Interp] samples
                    all write ports pre-commit; the copy preserves
                    that. *)
                 let cw e =
                   let c =
                     comp_to b ~var:slot ~what:(m.fm_name ^ " write") None e
                   in
                   if c < n_sig then begin
                     let d = new_cell b (cell_w b c) in
                     emit_move b d c;
                     d
                   end
                   else c
                 in
                 { tw_we = cw w.we; tw_addr = cw w.waddr; tw_data = cw w.wdata })
               m.fm_writes)
        in
        {
          tm_name = m.fm_name;
          tm_width = m.fm_width;
          tm_depth = m.fm_depth;
          tm_init = m.fm_init;
          tm_arr = mem_arrs.(mi);
          tm_writes = writes;
          tm_index = mi;
        })
      fmems_arr
  in
  let edge_hi = Ivec.length b.c_code in
  (* Freeze the builder into the runtime arrays. *)
  let n_cells = Ivec.length b.b_widths in
  let widths = Ivec.to_array b.b_widths in
  let wide = Array.map (fun w -> w > small_limit) widths in
  let ivals = Array.make (max 1 n_cells) 0 in
  let bvals = Array.make (max 1 n_cells) (Bits.of_bool false) in
  Array.iteri (fun c w -> if w > small_limit then bvals.(c) <- Bits.zero w) widths;
  List.iter
    (fun (c, v) ->
      if wide.(c) then bvals.(c) <- v else ivals.(c) <- Bits.to_int_trunc v)
    b.b_consts;
  (* slot -> fanout CSR (deduplicated per node by [Expr.vars]). *)
  let fan_cnt = Array.make (n_sig + 1) 0 in
  for i = 0 to n_nodes - 1 do
    List.iter (fun v -> fan_cnt.(slot v) <- fan_cnt.(slot v) + 1) node_vars.(i)
  done;
  let fan_off = Array.make (n_sig + 1) 0 in
  for s = 0 to n_sig - 1 do
    fan_off.(s + 1) <- fan_off.(s) + fan_cnt.(s)
  done;
  let fan_nodes = Array.make (max 1 fan_off.(n_sig)) 0 in
  let cursor = Array.copy fan_off in
  for i = 0 to n_nodes - 1 do
    List.iter
      (fun v ->
        let s = slot v in
        fan_nodes.(cursor.(s)) <- i;
        cursor.(s) <- cursor.(s) + 1)
      node_vars.(i)
  done;
  (* memory -> read-port-node CSR. *)
  let mem_cnt = Array.make (n_mems + 1) 0 in
  for i = 0 to n_nodes - 1 do
    if node_mem.(i) >= 0 then
      mem_cnt.(node_mem.(i)) <- mem_cnt.(node_mem.(i)) + 1
  done;
  let mem_fan_off = Array.make (n_mems + 1) 0 in
  for m = 0 to n_mems - 1 do
    mem_fan_off.(m + 1) <- mem_fan_off.(m) + mem_cnt.(m)
  done;
  let mem_fan_nodes = Array.make (max 1 mem_fan_off.(n_mems)) 0 in
  let mcursor = Array.copy mem_fan_off in
  for i = 0 to n_nodes - 1 do
    let mi = node_mem.(i) in
    if mi >= 0 then begin
      mem_fan_nodes.(mcursor.(mi)) <- i;
      mcursor.(mi) <- mcursor.(mi) + 1
    end
  done;
  (* Per-level dirty buckets, sized to the node population per level. *)
  let max_level = Array.fold_left max (-1) (Array.sub node_level 0 n_nodes) in
  let n_levels = max_level + 1 in
  let level_cnt = Array.make (max 1 n_levels) 0 in
  for i = 0 to n_nodes - 1 do
    level_cnt.(node_level.(i)) <- level_cnt.(node_level.(i)) + 1
  done;
  let buckets = Array.map (fun n -> Array.make (max 1 n) 0) level_cnt in
  let top_inputs = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name _w -> Hashtbl.replace top_inputs name (slot name))
    input_widths;
  let driven = Array.make (max 1 n_sig) false in
  Array.iteri (fun i s -> if i < n_nodes then driven.(s) <- true) node_slot;
  Array.iter (fun r -> driven.(r.tr_slot) <- true) regs;
  let calls_specs = Array.of_list (List.rev b.b_calls) in
  let t =
    {
      slots;
      names;
      top_inputs;
      n_sig;
      widths;
      wide;
      ivals;
      bvals;
      code = Ivec.to_array b.c_code;
      o_dst = Ivec.to_array b.c_dst;
      o_a = Ivec.to_array b.c_a;
      o_b = Ivec.to_array b.c_b;
      o_c = Ivec.to_array b.c_c;
      o_m = Ivec.to_array b.c_m;
      calls = Array.map (fun spec -> spec ivals bvals) calls_specs;
      comb_hi;
      edge_lo;
      edge_hi;
      node_slot;
      node_lo;
      node_hi;
      node_level;
      fan_off;
      fan_nodes;
      mem_fan_off;
      mem_fan_nodes;
      regs;
      mems;
      mem_arrs;
      arrays;
      mem_index;
      driven;
      buckets;
      bucket_len = Array.make (max 1 n_levels) 0;
      node_dirty = Array.make (max 1 n_nodes) false;
      have_dirty = false;
      all_dirty = true;
      steady = false;
      cycle = 0;
      injections = [||];
      inj_pending = [];
      active = Hashtbl.create 8;
      n_active = 0;
      observers = [||];
      obs_pending = [];
    }
  in
  settle t;
  t

(* ------------------------------------------------------------------ *)
(* API surface (parity with the other engines)                         *)
(* ------------------------------------------------------------------ *)

let reset t =
  t.cycle <- 0;
  Hashtbl.reset t.active;
  t.n_active <- 0;
  Array.iter (fun r -> set_cell t r.tr_slot r.tr_init) t.regs;
  Array.iter
    (fun m ->
      for i = 0 to m.tm_depth - 1 do
        m.tm_arr.(i) <-
          (if i < Array.length m.tm_init then m.tm_init.(i)
           else Bits.zero m.tm_width)
      done)
    t.mems;
  t.all_dirty <- true;
  t.steady <- false;
  settle t

let set_input t name v =
  match Hashtbl.find_opt t.top_inputs name with
  | None ->
      invalid_arg (Printf.sprintf "Interp_tape: %s is not a top input" name)
  | Some s ->
      let w = t.widths.(s) in
      if Bits.width v <> w then
        invalid_arg
          (Printf.sprintf "Interp_tape: input %s expects width %d, got %d" name
             w (Bits.width v));
      if t.wide.(s) then begin
        if not (Bits.equal t.bvals.(s) v) then begin
          t.bvals.(s) <- v;
          dirty_fanout t s;
          t.steady <- false
        end
      end
      else begin
        let x = Bits.to_int_trunc v in
        if t.ivals.(s) <> x then begin
          t.ivals.(s) <- x;
          dirty_fanout t s;
          t.steady <- false
        end
      end

let peek t name =
  match Hashtbl.find_opt t.slots name with
  | Some s -> get_cell t s
  | None -> raise Not_found

let peek_int t name =
  match Hashtbl.find_opt t.slots name with
  | Some s -> cell_trunc t s
  | None -> raise Not_found

let peek_mem t name addr =
  match Hashtbl.find_opt t.arrays name with
  | None -> raise Not_found
  | Some arr ->
      if addr < 0 || addr >= Array.length arr then
        invalid_arg "Interp_tape.peek_mem: address out of range";
      arr.(addr)

let poke_mem t name addr v =
  match Hashtbl.find_opt t.arrays name with
  | None -> raise Not_found
  | Some arr ->
      if addr < 0 || addr >= Array.length arr then
        invalid_arg "Interp_tape.poke_mem: address out of range";
      arr.(addr) <- v;
      dirty_mem_fanout t (Hashtbl.find t.mem_index name);
      t.steady <- false

let signal_names t =
  Array.to_list (Array.sub t.names 0 t.n_sig) |> List.sort compare

let memories t =
  Array.to_list (Array.map (fun m -> (m.tm_name, m.tm_depth)) t.mems)
  |> List.sort compare

let reader t name =
  match Hashtbl.find_opt t.slots name with
  | None -> raise Not_found
  | Some s ->
      if t.wide.(s) then fun () -> t.bvals.(s)
      else
        let w = t.widths.(s) in
        fun () -> Bits.of_int ~width:w t.ivals.(s)

let on_cycle t f = t.obs_pending <- f :: t.obs_pending

let clear_observers t =
  t.observers <- [||];
  t.obs_pending <- []

let current_cycle t = t.cycle

let inject t injs =
  let compile_inj (inj : Interp.injection) =
    let s =
      match Hashtbl.find_opt t.slots inj.inj_signal with
      | Some s -> s
      | None ->
          invalid_arg
            (Printf.sprintf "Interp_tape.inject: unknown signal %s"
               inj.inj_signal)
    in
    if inj.inj_start < 0 then
      invalid_arg
        (Printf.sprintf "Interp_tape.inject: %s: negative start cycle"
           inj.inj_signal);
    if inj.inj_cycles < 1 then
      invalid_arg
        (Printf.sprintf "Interp_tape.inject: %s: duration must be >= 1 cycle"
           inj.inj_signal);
    (match inj.inj_fault with
    | Interp.Flip i ->
        let w = t.widths.(s) in
        if i < 0 || i >= w then
          invalid_arg
            (Printf.sprintf
               "Interp_tape.inject: %s: flip bit %d out of range 0..%d"
               inj.inj_signal i (w - 1))
    | Interp.Stuck_at_0 | Interp.Stuck_at_1 -> ());
    {
      ci_slot = s;
      ci_fault = inj.inj_fault;
      ci_start = inj.inj_start;
      ci_stop = inj.inj_start + inj.inj_cycles;
      ci_driven = t.driven.(s);
    }
  in
  List.iter
    (fun inj -> t.inj_pending <- compile_inj inj :: t.inj_pending)
    injs;
  match injs with [] -> () | _ -> t.steady <- false

let clear_injections t =
  t.injections <- [||];
  t.inj_pending <- [];
  Hashtbl.reset t.active;
  t.n_active <- 0;
  (* Deactivated faults may have left transformed values behind on
     driven slots; recompute at the next settle, like the full-sweep
     engines do implicitly. *)
  t.all_dirty <- true;
  t.steady <- false

let export_state t : Interp.state =
  {
    Interp.st_cycle = t.cycle;
    st_values = Array.init t.n_sig (fun i -> (t.names.(i), get_cell t i));
    st_mems = Array.map (fun m -> (m.tm_name, Array.copy m.tm_arr)) t.mems;
  }

let import_state t (st : Interp.state) =
  if st.Interp.st_cycle < 0 then
    invalid_arg "Interp_tape.import_state: negative cycle";
  if Array.length st.st_values <> t.n_sig then
    invalid_arg
      (Printf.sprintf
         "Interp_tape.import_state: snapshot has %d signals, design has %d"
         (Array.length st.st_values) t.n_sig);
  Array.iter
    (fun (name, v) ->
      match Hashtbl.find_opt t.slots name with
      | None ->
          invalid_arg
            (Printf.sprintf "Interp_tape.import_state: unknown signal %s" name)
      | Some s ->
          let w = t.widths.(s) in
          if Bits.width v <> w then
            invalid_arg
              (Printf.sprintf
                 "Interp_tape.import_state: %s: snapshot width %d, design \
                  width %d"
                 name (Bits.width v) w);
          set_cell t s v)
    st.st_values;
  Array.iter
    (fun (name, words) ->
      match Hashtbl.find_opt t.arrays name with
      | None ->
          invalid_arg
            (Printf.sprintf "Interp_tape.import_state: unknown memory %s" name)
      | Some arr ->
          if Array.length words <> Array.length arr then
            invalid_arg
              (Printf.sprintf
                 "Interp_tape.import_state: memory %s: snapshot depth %d, \
                  design depth %d"
                 name (Array.length words) (Array.length arr));
          Array.blit words 0 arr 0 (Array.length arr))
    st.st_mems;
  Hashtbl.reset t.active;
  t.n_active <- 0;
  t.cycle <- st.st_cycle;
  (* The snapshot is settled, but the dirty bookkeeping no longer
     matches the cells: recompute once at the next settle. *)
  t.all_dirty <- true;
  t.steady <- false

(* Identical stream to {!Interp.random_campaign} for the same circuit
   and arguments: same LCG over the same sorted name list. *)
let random_campaign t ~seed ~n ~horizon =
  if n < 0 then invalid_arg "Interp_tape.random_campaign: negative n";
  if horizon < 1 then
    invalid_arg "Interp_tape.random_campaign: horizon must be >= 1";
  let names = Array.of_list (signal_names t) in
  if Array.length names = 0 then []
  else begin
    let lcg = ref (seed land 0x3FFFFFFF) in
    let next m =
      lcg := ((!lcg * 1664525) + 1013904223) land 0x3FFFFFFF;
      !lcg mod max 1 m
    in
    List.init n (fun _ ->
        let name = names.(next (Array.length names)) in
        let w = t.widths.(Hashtbl.find t.slots name) in
        let fault =
          match next 3 with
          | 0 -> Interp.Stuck_at_0
          | 1 -> Interp.Stuck_at_1
          | _ -> Interp.Flip (next w)
        in
        let start = next horizon in
        let cycles = 1 + next 4 in
        {
          Interp.inj_signal = name;
          inj_fault = fault;
          inj_start = start;
          inj_cycles = cycles;
        })
  end
