(* The original string-keyed evaluation engine, kept verbatim as the
   semantic reference for the slot-compiled {!Interp}.  Every signal is
   looked up by flat name in hashtables and every expression tree is
   re-walked on each evaluation — slow, but simple enough to audit.
   The differential tests in [test/test_rtl.ml] step both engines in
   lockstep and require identical state.

   Flattening: every signal of every instance becomes a flat signal named
   [prefix ^ signal]; instance boundaries become alias assignments. *)

type flat_reg = {
  fr_name : string;
  fr_init : Bits.t;
  fr_next : Expr.t;
}

type flat_mem = {
  fm_name : string;
  fm_width : int;
  fm_depth : int;
  fm_init : Bits.t array;
  fm_writes : Circuit.mem_write list; (* exprs already renamed *)
  fm_reads : (string * Expr.t) list;
}

type base = {
  widths : (string, int) Hashtbl.t;
  top_inputs : (string, int) Hashtbl.t;
  regs : flat_reg array;
  mems : flat_mem array;
  values : (string, Bits.t) Hashtbl.t;
  arrays : (string, Bits.t array) Hashtbl.t;
}

let flatten (top : Circuit.t) =
  let widths = Hashtbl.create 256 in
  let assigns = ref [] in
  let regs = ref [] in
  let mems = ref [] in
  let add_width name w =
    if Hashtbl.mem widths name then
      invalid_arg (Printf.sprintf "Interp: duplicate flat signal %s" name);
    Hashtbl.add widths name w
  in
  let rec go prefix (c : Circuit.t) =
    let ren n = prefix ^ n in
    let rename_expr = Expr.map_vars ren in
    List.iter
      (fun (p : Circuit.port) ->
        (* Top-level inputs keep their names; instance ports are wires. *)
        add_width (ren p.port_name) p.port_width)
      c.ports;
    List.iter
      (fun (w : Circuit.signal) -> add_width (ren w.sig_name) w.sig_width)
      c.wires;
    List.iter
      (fun (r : Circuit.reg) ->
        add_width (ren r.reg_name) r.reg_width;
        regs :=
          { fr_name = ren r.reg_name; fr_init = r.init;
            fr_next = rename_expr r.next }
          :: !regs)
      c.regs;
    List.iter
      (fun (m : Circuit.memory) ->
        List.iter (fun (rd, _) -> add_width (ren rd) m.data_width) m.reads;
        mems :=
          {
            fm_name = ren m.mem_name;
            fm_width = m.data_width;
            fm_depth = m.depth;
            fm_init = m.init;
            fm_writes =
              List.map
                (fun (w : Circuit.mem_write) ->
                  {
                    Circuit.we = rename_expr w.we;
                    waddr = rename_expr w.waddr;
                    wdata = rename_expr w.wdata;
                  })
                m.writes;
            fm_reads =
              List.map (fun (rd, a) -> (ren rd, rename_expr a)) m.reads;
          }
          :: !mems)
      c.memories;
    List.iter
      (fun (a : Circuit.assign) ->
        assigns := (ren a.target, rename_expr a.expr) :: !assigns)
      c.assigns;
    List.iter
      (fun (i : Circuit.instance) ->
        let sub_prefix = prefix ^ i.inst_name ^ "$" in
        go sub_prefix i.sub;
        List.iter
          (fun (p, e) -> assigns := (sub_prefix ^ p, rename_expr e) :: !assigns)
          i.in_connections;
        List.iter
          (fun (p, w) -> assigns := (ren w, Expr.Var (sub_prefix ^ p)) :: !assigns)
          i.out_connections)
      c.instances
  in
  go "" top;
  let top_inputs = Hashtbl.create 16 in
  List.iter
    (fun (p : Circuit.port) -> Hashtbl.add top_inputs p.port_name p.port_width)
    (Circuit.inputs top);
  (widths, top_inputs, List.rev !assigns, List.rev !regs, List.rev !mems)

(* Topologically order combinational assignments; memory reads are
   additional combinational nodes (memory contents are state). *)
let schedule widths assigns (mems : flat_mem list) =
  let nodes = Hashtbl.create 256 in
  (* target -> dependency vars *)
  List.iter
    (fun (tgt, e) -> Hashtbl.replace nodes tgt (Expr.vars e, `Assign e))
    assigns;
  List.iter
    (fun m ->
      List.iter
        (fun (rd, a) -> Hashtbl.replace nodes rd (Expr.vars a, `Memread (m, a)))
        m.fm_reads)
    mems;
  ignore widths;
  let state = Hashtbl.create 256 in
  (* 0 = unvisited, 1 = in progress, 2 = done *)
  let order = ref [] in
  let rec visit path name =
    match Hashtbl.find_opt nodes name with
    | None -> () (* input, register or constant source: state, not comb *)
    | Some (deps, _) -> (
        match Hashtbl.find_opt state name with
        | Some 2 -> ()
        | Some 1 ->
            let cycle = name :: List.rev (name :: path) in
            invalid_arg
              ("Interp: combinational loop: " ^ String.concat " -> "
                 (List.rev cycle))
        | Some _ | None ->
            Hashtbl.replace state name 1;
            List.iter (visit (name :: path)) deps;
            Hashtbl.replace state name 2;
            order := name :: !order)
  in
  Hashtbl.iter (fun name _ -> visit [] name) nodes;
  (* [!order] holds the DFS finish order reversed (dependents first);
     [rev_map] restores dependency-first order. *)
  List.rev_map
    (fun name ->
      match Hashtbl.find nodes name with
      | _, `Assign e -> (name, `Assign e)
      | _, `Memread (m, a) -> (name, `Memread (m, a)))
    !order

type sched_node = [ `Assign of Expr.t | `Memread of flat_mem * Expr.t ]

(* Mirror of {!Interp}'s fault injection, re-implemented independently
   against the string-keyed engine so differential tests can hold the
   two faulty simulations bit-equivalent. *)
type rinj = {
  ri_name : string;
  ri_fault : Interp.fault;
  ri_start : int;
  ri_stop : int; (* exclusive *)
  ri_driven : bool;
}

type sim = {
  base : base;
  sched : (string * sched_node) array;
  mutable cycle : int;
  mutable injections : rinj list;
  active : (string, Interp.fault) Hashtbl.t;
  mutable observers : (int -> unit) list; (* attach order *)
}

let apply_fault (f : Interp.fault) v =
  let w = Bits.width v in
  match f with
  | Interp.Stuck_at_0 -> Bits.zero w
  | Interp.Stuck_at_1 -> Bits.ones w
  | Interp.Flip i ->
      if i < 0 || i >= w then v
      else Bits.logxor v (Bits.shift_left (Bits.of_int ~width:w 1) i)

let faulted sim name v =
  if Hashtbl.length sim.active = 0 then v
  else
    match Hashtbl.find_opt sim.active name with
    | None -> v
    | Some f -> apply_fault f v

let env sim name =
  match Hashtbl.find_opt sim.base.values name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Interp: unknown signal %s" name)

let settle_sim sim =
  Array.iter
    (fun (name, node) ->
      let v =
        match node with
        | `Assign e -> Expr.eval ~env:(env sim) e
        | `Memread (m, a) ->
            let arr = Hashtbl.find sim.base.arrays m.fm_name in
            let addr = Bits.to_int_trunc (Expr.eval ~env:(env sim) a) in
            if addr < m.fm_depth then arr.(addr) else Bits.zero m.fm_width
      in
      Hashtbl.replace sim.base.values name (faulted sim name v))
    sim.sched

let clock_edge sim =
  (* Sample every next-state value with pre-edge signals, then commit. *)
  let reg_next =
    Array.map
      (fun r -> (r.fr_name, faulted sim r.fr_name (Expr.eval ~env:(env sim) r.fr_next)))
      sim.base.regs
  in
  let mem_ops =
    Array.map
      (fun m ->
        let ops =
          List.filter_map
            (fun (w : Circuit.mem_write) ->
              if Bits.reduce_or (Expr.eval ~env:(env sim) w.we) then
                Some
                  ( Bits.to_int_trunc (Expr.eval ~env:(env sim) w.waddr),
                    Expr.eval ~env:(env sim) w.wdata )
              else None)
            m.fm_writes
        in
        (m, ops))
      sim.base.mems
  in
  Array.iter (fun (n, v) -> Hashtbl.replace sim.base.values n v) reg_next;
  Array.iter
    (fun (m, ops) ->
      let arr = Hashtbl.find sim.base.arrays m.fm_name in
      List.iter
        (fun (addr, data) -> if addr < m.fm_depth then arr.(addr) <- data)
        ops)
    mem_ops

type t = sim

let create top =
  let widths, top_inputs, assigns, regs, mems = flatten top in
  let order = schedule widths assigns mems in
  let values = Hashtbl.create 256 in
  Hashtbl.iter (fun n w -> Hashtbl.replace values n (Bits.zero w)) widths;
  let arrays = Hashtbl.create 8 in
  List.iter
    (fun m ->
      Hashtbl.replace arrays m.fm_name
        (Array.init m.fm_depth (fun i ->
             if i < Array.length m.fm_init then m.fm_init.(i)
             else Bits.zero m.fm_width)))
    mems;
  let base =
    {
      widths;
      top_inputs;
      regs = Array.of_list regs;
      mems = Array.of_list mems;
      values;
      arrays;
    }
  in
  let sim =
    {
      base;
      sched = Array.of_list order;
      cycle = 0;
      injections = [];
      active = Hashtbl.create 8;
      observers = [];
    }
  in
  settle_sim sim;
  sim

let reset sim =
  sim.cycle <- 0;
  Hashtbl.reset sim.active;
  Array.iter
    (fun r -> Hashtbl.replace sim.base.values r.fr_name r.fr_init)
    sim.base.regs;
  Array.iter
    (fun m ->
      let arr = Hashtbl.find sim.base.arrays m.fm_name in
      Array.iteri
        (fun i _ ->
          arr.(i) <-
            (if i < Array.length m.fm_init then m.fm_init.(i)
             else Bits.zero m.fm_width))
        arr)
    sim.base.mems;
  settle_sim sim

let set_input sim name v =
  match Hashtbl.find_opt sim.base.top_inputs name with
  | None -> invalid_arg (Printf.sprintf "Interp: %s is not a top input" name)
  | Some w ->
      if Bits.width v <> w then
        invalid_arg
          (Printf.sprintf "Interp: input %s expects width %d, got %d" name w
             (Bits.width v));
      Hashtbl.replace sim.base.values name v

let settle = settle_sim

let refresh_active sim =
  if sim.injections <> [] || Hashtbl.length sim.active > 0 then begin
    Hashtbl.reset sim.active;
    List.iter
      (fun ri ->
        if sim.cycle >= ri.ri_start && sim.cycle < ri.ri_stop then begin
          Hashtbl.replace sim.active ri.ri_name ri.ri_fault;
          if not ri.ri_driven then
            match ri.ri_fault with
            | Interp.Flip _ when sim.cycle > ri.ri_start -> ()
            | f ->
                Hashtbl.replace sim.base.values ri.ri_name
                  (apply_fault f (env sim ri.ri_name))
        end)
      sim.injections
  end

let step sim =
  (* Next-state functions sample the pre-edge combinational values; after
     the edge the combinational logic is re-settled so outputs reflect the
     new state. *)
  refresh_active sim;
  settle_sim sim;
  (* Same sampling point as {!Interp.step}: observers see the settled
     pre-edge values the registers are about to latch. *)
  List.iter (fun f -> f sim.cycle) sim.observers;
  clock_edge sim;
  settle_sim sim;
  sim.cycle <- sim.cycle + 1

let run sim n =
  for _ = 1 to n do
    step sim
  done

let peek sim name =
  match Hashtbl.find_opt sim.base.values name with
  | Some v -> v
  | None -> raise Not_found

let peek_int sim name = Bits.to_int_trunc (peek sim name)

let peek_mem sim name addr =
  match Hashtbl.find_opt sim.base.arrays name with
  | None -> raise Not_found
  | Some arr ->
      if addr < 0 || addr >= Array.length arr then
        invalid_arg "Interp.peek_mem: address out of range";
      arr.(addr)

let poke_mem sim name addr v =
  match Hashtbl.find_opt sim.base.arrays name with
  | None -> raise Not_found
  | Some arr ->
      if addr < 0 || addr >= Array.length arr then
        invalid_arg "Interp.poke_mem: address out of range";
      arr.(addr) <- v

let signal_names sim =
  Hashtbl.fold (fun n _ acc -> n :: acc) sim.base.widths [] |> List.sort compare

let on_cycle sim f = sim.observers <- sim.observers @ [ f ]

let clear_observers sim = sim.observers <- []

let reader sim name =
  if not (Hashtbl.mem sim.base.values name) then raise Not_found;
  (* [Hashtbl.replace] rebinds in place, so the lookup must happen per
     call; this engine hashes strings everywhere anyway. *)
  fun () -> Hashtbl.find sim.base.values name

(* Mirrors {!Interp.random_campaign} bit for bit: same LCG over the same
   sorted name list, so the two engines derive identical campaigns from
   identical arguments. *)
let random_campaign sim ~seed ~n ~horizon =
  if n < 0 then invalid_arg "Interp_ref.random_campaign: negative n";
  if horizon < 1 then
    invalid_arg "Interp_ref.random_campaign: horizon must be >= 1";
  let names = Array.of_list (signal_names sim) in
  if Array.length names = 0 then []
  else begin
    let lcg = ref (seed land 0x3FFFFFFF) in
    let next m =
      lcg := ((!lcg * 1664525) + 1013904223) land 0x3FFFFFFF;
      !lcg mod max 1 m
    in
    List.init n (fun _ ->
        let name = names.(next (Array.length names)) in
        let w = Bits.width (Hashtbl.find sim.base.values name) in
        let fault =
          match next 3 with
          | 0 -> Interp.Stuck_at_0
          | 1 -> Interp.Stuck_at_1
          | _ -> Interp.Flip (next w)
        in
        let start = next horizon in
        let cycles = 1 + next 4 in
        { Interp.inj_signal = name; inj_fault = fault; inj_start = start;
          inj_cycles = cycles })
  end

let current_cycle sim = sim.cycle

let inject sim injs =
  let compile_inj (inj : Interp.injection) =
    if not (Hashtbl.mem sim.base.widths inj.Interp.inj_signal) then
      invalid_arg
        (Printf.sprintf "Interp_ref.inject: unknown signal %s"
           inj.Interp.inj_signal);
    if inj.Interp.inj_start < 0 || inj.Interp.inj_cycles < 1 then
      invalid_arg
        (Printf.sprintf "Interp_ref.inject: %s: bad schedule"
           inj.Interp.inj_signal);
    let driven =
      Array.exists (fun (n, _) -> n = inj.Interp.inj_signal) sim.sched
      || Array.exists
           (fun r -> r.fr_name = inj.Interp.inj_signal)
           sim.base.regs
    in
    {
      ri_name = inj.Interp.inj_signal;
      ri_fault = inj.Interp.inj_fault;
      ri_start = inj.Interp.inj_start;
      ri_stop = inj.Interp.inj_start + inj.Interp.inj_cycles;
      ri_driven = driven;
    }
  in
  sim.injections <- sim.injections @ List.map compile_inj injs

let clear_injections sim =
  sim.injections <- [];
  Hashtbl.reset sim.active

let memories sim =
  Array.to_list
    (Array.map (fun m -> (m.fm_name, m.fm_depth)) sim.base.mems)
  |> List.sort compare

(* State snapshots share {!Interp.state} so a checkpoint written by one
   engine can restore the other (the flattening is identical). *)

let by_name (a, _) (b, _) = compare a b

let export_state sim : Interp.state =
  {
    Interp.st_cycle = sim.cycle;
    st_values =
      (let l =
         Hashtbl.fold (fun n v acc -> (n, v) :: acc) sim.base.values []
       in
       let a = Array.of_list l in
       Array.sort by_name a;
       a);
    st_mems =
      (let l =
         Hashtbl.fold
           (fun n arr acc -> (n, Array.copy arr) :: acc)
           sim.base.arrays []
       in
       let a = Array.of_list l in
       Array.sort by_name a;
       a);
  }

let import_state sim (st : Interp.state) =
  if st.Interp.st_cycle < 0 then
    invalid_arg "Interp_ref.import_state: negative cycle";
  if Array.length st.Interp.st_values <> Hashtbl.length sim.base.values then
    invalid_arg
      (Printf.sprintf
         "Interp_ref.import_state: snapshot has %d signals, design has %d"
         (Array.length st.Interp.st_values)
         (Hashtbl.length sim.base.values));
  Array.iter
    (fun (name, v) ->
      match Hashtbl.find_opt sim.base.widths name with
      | None ->
          invalid_arg
            (Printf.sprintf "Interp_ref.import_state: unknown signal %s" name)
      | Some w ->
          if Bits.width v <> w then
            invalid_arg
              (Printf.sprintf
                 "Interp_ref.import_state: %s: snapshot width %d, design \
                  width %d"
                 name (Bits.width v) w);
          Hashtbl.replace sim.base.values name v)
    st.Interp.st_values;
  Array.iter
    (fun (name, words) ->
      match Hashtbl.find_opt sim.base.arrays name with
      | None ->
          invalid_arg
            (Printf.sprintf "Interp_ref.import_state: unknown memory %s" name)
      | Some arr ->
          if Array.length words <> Array.length arr then
            invalid_arg
              (Printf.sprintf
                 "Interp_ref.import_state: memory %s: snapshot depth %d, \
                  design depth %d"
                 name (Array.length words) (Array.length arr));
          Array.blit words 0 arr 0 (Array.length arr))
    st.Interp.st_mems;
  Hashtbl.reset sim.active;
  sim.cycle <- st.Interp.st_cycle
