(** NAND2-equivalent gate-count estimation.

    The paper reports Synopsys Design Compiler gate counts in the LEDA TSMC
    0.25um standard-cell library.  We substitute a technology-independent
    per-primitive model (full adder = 9 NAND2, flip-flop = 6, 2:1 mux bit =
    3, XOR = 3, ...), which preserves the relative area of the different bus
    systems.  Memories are excluded by default, as the paper counts the "Bus
    System logic" only. *)

type breakdown = {
  register_bits : int;
  gates_comb : int;   (** combinational NAND2 equivalents *)
  gates_regs : int;   (** NAND2 equivalents of the flip-flops *)
  memory_bits : int;  (** total memory bits (informational) *)
}

val gates : breakdown -> int
(** [gates_comb + gates_regs]. *)

val of_circuit : ?include_memories:bool -> Circuit.t -> breakdown
(** Estimate the whole hierarchy (instances included).  When
    [include_memories] is true (default false), each memory bit adds
    a register-bit cost. *)

val glue_row : string
(** The module-name pseudo-row ["<top-level glue>"] used by
    {!by_instance} and {!by_module} for logic owned by the top level
    itself. *)

val by_instance :
  ?include_memories:bool -> Circuit.t -> (string * int * int) list
(** Per-module area of the top level's direct instances:
    [(module_name, instance_count, total_gates)] rows, heaviest first,
    with the top's own glue logic as ["<top-level glue>"].  Instances
    of the same module are summed (their count is reported), so the
    output reads like a synthesis area report.  The glue row includes
    the cost of expressions driving instance ports, so the rows sum
    exactly to [gates (of_circuit c)]. *)

val by_module :
  ?include_memories:bool -> Circuit.t -> (string * int * int) list
(** Fully flattened per-module report: every instance at any depth of
    the hierarchy contributes one count, and each row's gates are that
    module's {e own} logic (assigns, registers, memories, and the port
    expressions it feeds its direct children) — sub-instances are
    reported on their own rows.  Rows sum exactly to
    [gates (of_circuit c)], so protection modules (WATCHDOG,
    PARITY_GEN/PARITY_CHK) and bridges are visible wherever they are
    instantiated.  Sorted heaviest first, ties by name. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
