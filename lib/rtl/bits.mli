(** Arbitrary-width bit vectors.

    A value of type {!t} is an immutable unsigned bit vector with an explicit
    width in bits.  All arithmetic is modulo [2^width].  Bit 0 is the least
    significant bit.  This module is the value domain of the RTL interpreter
    ({!Interp}) and of constant expressions ({!Expr.Const}). *)

type t

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w].  [w >= 1]. *)

val one : int -> t
(** [one w] is the vector of width [w] holding the value 1. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width v] truncates the two's-complement representation of [v]
    to [width] bits.  Negative [v] wraps (e.g. [of_int ~width:4 (-1)] is
    [0xF]). *)

val of_bool : bool -> t
(** [of_bool b] is a 1-bit vector. *)

val init : int -> (int -> bool) -> t
(** [init w f] is the [w]-bit vector whose bit [i] is [f i]. *)

val of_string : string -> t
(** [of_string s] parses ["<width>'b<binary>"], ["<width>'h<hex>"] or
    ["<width>'d<decimal>"] (Verilog-style, [_] separators allowed).
    @raise Invalid_argument on malformed input or overflow. *)

(** {1 Observation} *)

val width : t -> int

val to_int_exn : t -> int
(** Value as a non-negative OCaml [int].
    @raise Invalid_argument if the value does not fit in 62 bits. *)

val to_int_trunc : t -> int
(** Low [min width 62] bits as a non-negative OCaml [int]; never raises. *)

val bit : t -> int -> bool
(** [bit t i] is bit [i]; [false] when [i >= width t].
    @raise Invalid_argument if [i < 0]. *)

val is_zero : t -> bool

val to_binary_string : t -> string
(** MSB-first, exactly [width] characters of ['0']/['1']. *)

val to_hex_string : t -> string
(** MSB-first hex, [ceil (width/4)] digits. *)

val to_verilog_literal : t -> string
(** E.g. [8'hff]. *)

val pp : Format.formatter -> t -> unit

(** {1 Structure} *)

val concat : t -> t -> t
(** [concat hi lo] has width [width hi + width lo]; [lo] occupies the low
    bits. *)

val concat_list : t list -> t
(** [concat_list vs] concatenates with the head of [vs] most significant.
    @raise Invalid_argument on the empty list. *)

val select : t -> int -> int -> t
(** [select t hi lo] is bits [hi..lo] inclusive, width [hi - lo + 1].
    @raise Invalid_argument unless [0 <= lo <= hi < width t]. *)

val resize : t -> int -> t
(** Zero-extend or truncate to the given width. *)

val repeat : t -> int -> t
(** [repeat t n] concatenates [n >= 1] copies of [t]. *)

(** {1 Logic} *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val reduce_or : t -> bool
val reduce_and : t -> bool
val reduce_xor : t -> bool

(** {1 Arithmetic (unsigned, widths of both operands must match)} *)

val add : t -> t -> t
val sub : t -> t -> t

val mul : t -> t -> t
(** Full-width product: [width (mul a b) = width a + width b]. *)

val smul : t -> t -> t
(** Signed (two's complement) full-width product, same width rule as
    {!mul}. *)

val to_signed_int_exn : t -> int
(** Two's-complement value as an OCaml [int].
    @raise Invalid_argument if the magnitude does not fit in 62 bits. *)

val of_signed_int : width:int -> int -> t
(** Alias of {!of_int} (negative values already wrap); provided for
    call-site clarity. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** {1 Comparison (unsigned; widths must match for the orderings)} *)

val equal : t -> t -> bool
(** Width and value equality. *)

val compare : t -> t -> int
(** Unsigned value order; shorter-width values are zero-extended. *)

val ult : t -> t -> bool
val ule : t -> t -> bool
