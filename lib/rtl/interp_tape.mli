(** Tape-compiled interpreter with activity-based evaluation.

    Third evaluation engine in the ref -> slot -> tape lineage.
    {!create} compiles the levelized circuit into a flat linear tape of
    pre-decoded ops — int opcode plus slot operands in contiguous
    arrays, no per-expression closures — with the immediate-int fast
    path inlined for signals of width <= 62 bits.  Two dynamic
    optimizations ride on the tape: activity-based evaluation (per-level
    dirty sets from a slot -> fanout map, so unchanged combinational
    cones are skipped) and idle-stretch batching ({!run} fast-forwards
    register-stable stretches while still firing observers at correct
    cycle numbers).

    The API mirrors {!Interp} exactly — same fault-injection and
    observer interfaces, and {!Interp.state} snapshots interchange
    across all three engines.  Differential tests in [test/test_rtl.ml]
    hold this engine bit-exact against both {!Interp} and
    {!Interp_ref}. *)

type t

val create : Circuit.t -> t
(** Flatten, levelize and tape-compile the design.
    @raise Invalid_argument on combinational loops or width-rule
    violations. *)

val reset : t -> unit
val set_input : t -> string -> Bits.t -> unit
val settle : t -> unit
val step : t -> unit

val run : t -> int -> unit
(** [run t n] performs [n] steps, batching steady (register-stable)
    stretches: cycles in which the design is at a fixed point advance
    the cycle counter without re-evaluating the netlist.  Observers
    still fire once per cycle with correct cycle numbers and see
    exactly the values an unbatched run would show. *)

val peek : t -> string -> Bits.t
(** @raise Not_found if unknown. *)

val peek_int : t -> string -> int
val peek_mem : t -> string -> int -> Bits.t
val poke_mem : t -> string -> int -> Bits.t -> unit

val signal_names : t -> string list
(** All flat signal names, sorted. *)

val memories : t -> (string * int) list
(** All flattened memories as [(flat name, depth)], sorted. *)

val on_cycle : t -> (int -> unit) -> unit
(** Register a per-cycle observer.  Same sampling point as
    {!Interp.on_cycle}: after the combinational settle with the cycle's
    inputs, before the clock edge. *)

val clear_observers : t -> unit

val reader : t -> string -> unit -> Bits.t
(** Pre-resolved accessor for a flat signal.
    @raise Not_found if the signal is unknown. *)

val inject : t -> Interp.injection list -> unit
(** Mirror of {!Interp.inject} (same campaign descriptors, same
    validation).  Installing injections disables idle batching until
    the campaign windows are resolved.
    @raise Invalid_argument on unknown signals or bad schedules. *)

val clear_injections : t -> unit

val current_cycle : t -> int
(** Steps taken since [create]/[reset]. *)

val export_state : t -> Interp.state
(** Snapshot the current state.  Shares {!Interp.state}, so checkpoints
    interchange with the other engines — the flattening (and therefore
    the flat-name universe) is identical by construction. *)

val import_state : t -> Interp.state -> unit
(** Restore a snapshot into an engine created from the same circuit.
    @raise Invalid_argument on unknown names or width/depth mismatch. *)

val random_campaign :
  t -> seed:int -> n:int -> horizon:int -> Interp.injection list
(** Identical stream to {!Interp.random_campaign} for the same circuit
    and arguments (same LCG over the same sorted name list). *)
