type report = { levels : int; endpoint : string }

exception Combinational_cycle of string list

let levelize nodes =
  let deps_of = Hashtbl.create (2 * List.length nodes) in
  List.iter (fun (n, deps) -> Hashtbl.replace deps_of n deps) nodes;
  let state = Hashtbl.create (2 * List.length nodes) in
  (* name -> `Busy during the DFS, `Done level afterwards *)
  let order = ref [] in
  let rec visit path name =
    match Hashtbl.find_opt deps_of name with
    | None -> 0 (* source: input, register output, constant, memory word *)
    | Some deps -> (
        match Hashtbl.find_opt state name with
        | Some (`Done l) -> l
        | Some `Busy ->
            (* Trim [path] to the part inside the cycle. *)
            let rec cycle acc = function
              | [] -> acc
              | n :: rest -> if n = name then n :: acc else cycle (n :: acc) rest
            in
            raise (Combinational_cycle (cycle [ name ] path))
        | None ->
            Hashtbl.replace state name `Busy;
            let l =
              1
              + List.fold_left
                  (fun acc d -> max acc (visit (name :: path) d))
                  (-1) deps
            in
            Hashtbl.replace state name (`Done l);
            order := (name, l) :: !order;
            l)
  in
  List.iter (fun (name, _) -> ignore (visit [] name)) nodes;
  (* [!order] holds DFS finish order reversed (dependents first). *)
  List.rev !order

let clog2 n =
  let rec go w = if 1 lsl w >= n then w else go (w + 1) in
  if n <= 1 then 0 else go 1

(* Levels contributed by one operator over operands of width [w]. *)
let adder_levels w = 2 * max 1 (clog2 w)
let cmp_levels w = 1 + clog2 w

let rec expr_levels ~env depth_of_var (e : Expr.t) =
  let sub x = expr_levels ~env depth_of_var x in
  let w x = Expr.width ~env x in
  match e with
  | Expr.Const _ -> 0
  | Expr.Var v -> depth_of_var v
  | Expr.Select (x, _, _) | Expr.Shift_left (x, _) | Expr.Shift_right (x, _)
    ->
      sub x
  | Expr.Concat xs -> List.fold_left (fun a x -> max a (sub x)) 0 xs
  | Expr.Unop (Expr.Not, x) -> 1 + sub x
  | Expr.Unop ((Expr.Reduce_or | Expr.Reduce_and | Expr.Reduce_xor), x) ->
      max 1 (clog2 (w x)) + sub x
  | Expr.Binop ((Expr.And | Expr.Or | Expr.Xor), a, b) ->
      1 + max (sub a) (sub b)
  | Expr.Binop ((Expr.Add | Expr.Sub), a, b) ->
      adder_levels (w a) + max (sub a) (sub b)
  | Expr.Binop ((Expr.Mul | Expr.Smul), a, b) ->
      (* Booth/Wallace partial products then a final carry-lookahead. *)
      let wp = w a + w b in
      clog2 (w b) + adder_levels wp + max (sub a) (sub b)
  | Expr.Binop ((Expr.Eq | Expr.Neq), a, b) ->
      cmp_levels (w a) + max (sub a) (sub b)
  | Expr.Binop ((Expr.Ult | Expr.Ule), a, b) ->
      (adder_levels (w a) + 1) + max (sub a) (sub b)
  | Expr.Mux (c, a, b) -> 1 + max (sub c) (max (sub a) (sub b))

(* Flatten the hierarchy the same way the interpreter does: instance
   boundaries become zero-cost alias assignments. *)
let flatten (top : Circuit.t) =
  let widths = Hashtbl.create 256 in
  let assigns = ref [] in
  let reg_nexts = ref [] in
  let mem_nodes = ref [] in
  let mem_write_exprs = ref [] in
  let rec go prefix (c : Circuit.t) =
    let ren n = prefix ^ n in
    let rename_expr = Expr.map_vars ren in
    List.iter
      (fun (p : Circuit.port) ->
        Hashtbl.replace widths (ren p.port_name) p.port_width)
      c.ports;
    List.iter
      (fun (s : Circuit.signal) ->
        Hashtbl.replace widths (ren s.sig_name) s.sig_width)
      c.wires;
    List.iter
      (fun (r : Circuit.reg) ->
        Hashtbl.replace widths (ren r.reg_name) r.reg_width;
        reg_nexts := (ren r.reg_name, rename_expr r.next) :: !reg_nexts)
      c.regs;
    List.iter
      (fun (m : Circuit.memory) ->
        List.iter
          (fun (rd, a) ->
            Hashtbl.replace widths (ren rd) m.data_width;
            mem_nodes := (ren rd, rename_expr a, m.depth) :: !mem_nodes)
          m.reads;
        List.iter
          (fun (wr : Circuit.mem_write) ->
            mem_write_exprs :=
              (ren m.mem_name,
               [ rename_expr wr.we; rename_expr wr.waddr;
                 rename_expr wr.wdata ])
              :: !mem_write_exprs)
          m.writes)
      c.memories;
    List.iter
      (fun (a : Circuit.assign) ->
        assigns := (ren a.target, rename_expr a.expr) :: !assigns)
      c.assigns;
    List.iter
      (fun (i : Circuit.instance) ->
        let sub_prefix = prefix ^ i.inst_name ^ "$" in
        go sub_prefix i.sub;
        List.iter
          (fun (p, e) ->
            assigns := (sub_prefix ^ p, rename_expr e) :: !assigns)
          i.in_connections;
        List.iter
          (fun (p, wn) ->
            assigns := (ren wn, Expr.Var (sub_prefix ^ p)) :: !assigns)
          i.out_connections)
      c.instances
  in
  go "" top;
  (widths, !assigns, !reg_nexts, !mem_nodes, !mem_write_exprs)

let of_circuit (top : Circuit.t) =
  let widths, assigns, reg_nexts, mem_nodes, mem_writes = flatten top in
  let env n =
    match Hashtbl.find_opt widths n with
    | Some w -> w
    | None -> invalid_arg ("Depth: unknown signal " ^ n)
  in
  (* Combinational drivers: target -> node. *)
  let drivers = Hashtbl.create 256 in
  List.iter (fun (t, e) -> Hashtbl.replace drivers t (`Assign e)) assigns;
  List.iter
    (fun (rd, a, depth) -> Hashtbl.replace drivers rd (`Memread (a, depth)))
    mem_nodes;
  let memo = Hashtbl.create 256 in
  let rec depth_of path name =
    match Hashtbl.find_opt memo name with
    | Some (`Done d) -> d
    | Some `Busy ->
        invalid_arg
          ("Depth: combinational loop through "
          ^ String.concat " -> " (List.rev (name :: path)))
    | None -> (
        match Hashtbl.find_opt drivers name with
        | None -> 0 (* input, register output or constant source *)
        | Some node ->
            Hashtbl.replace memo name `Busy;
            let d =
              match node with
              | `Assign e -> expr_levels ~env (depth_of (name :: path)) e
              | `Memread (a, depth) ->
                  (* Address decode then word mux: log2(depth) levels. *)
                  max 1 (clog2 depth)
                  + expr_levels ~env (depth_of (name :: path)) a
            in
            Hashtbl.replace memo name (`Done d);
            d)
  in
  let best = ref { levels = 0; endpoint = Circuit.name top } in
  let consider endpoint d = if d > !best.levels then best := { levels = d; endpoint } in
  (* Endpoints: every combinational target (covers output ports), every
     register D input, every memory write port. *)
  Hashtbl.iter
    (fun name _ -> consider name (depth_of [] name))
    drivers;
  List.iter
    (fun (r, e) ->
      consider (r ^ " (reg D)") (expr_levels ~env (depth_of []) e))
    reg_nexts;
  List.iter
    (fun (m, es) ->
      List.iter
        (fun e ->
          consider (m ^ " (mem write)") (expr_levels ~env (depth_of []) e))
        es)
    mem_writes;
  !best

let pp_report fmt r =
  Format.fprintf fmt "critical path: %d levels, ending at %s" r.levels
    r.endpoint
