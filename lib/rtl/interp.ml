(* Slot-compiled evaluation engine.

   [create] runs three phases once, so that the per-cycle hot path
   ([settle] / [step]) performs zero string hashing and zero expression
   tree traversal:

   1. {b Intern}: the hierarchy is flattened (every signal of every
      instance becomes [prefix ^ signal]; instance boundaries become
      alias assignments) and each flat name is interned into an integer
      slot.  Values live in one dense [Bits.t array] indexed by slot;
      the [string -> slot] table survives only at the API boundary
      ([set_input] / [peek] / VCD).
   2. {b Compile}: every [Expr.t] is compiled into a closure over slot
      indices — operator dispatch and variable resolution happen here,
      not per cycle.
   3. {b Levelize}: combinational assignments and memory read ports are
      topologically ordered once ({!Depth.levelize}), so one linear
      sweep of the schedule settles the network; combinational loops
      are rejected at [create] time with the offending path. *)

type flat_reg = {
  fr_name : string;
  fr_init : Bits.t;
  fr_next : Expr.t;
}

type flat_mem = {
  fm_name : string;
  fm_width : int;
  fm_depth : int;
  fm_init : Bits.t array;
  fm_writes : Circuit.mem_write list; (* exprs already renamed *)
  fm_reads : (string * Expr.t) list;
}

(* ------------------------------------------------------------------ *)
(* Phase 1: flatten the hierarchy and intern signal names.             *)
(* ------------------------------------------------------------------ *)

let flatten (top : Circuit.t) =
  let widths = Hashtbl.create 256 in
  (* flat name -> instance path that declared it, for error reporting *)
  let origins = Hashtbl.create 256 in
  let decls = ref [] in (* (flat name, width), reversed declaration order *)
  let assigns = ref [] in
  let regs = ref [] in
  let mems = ref [] in
  let rec go prefix path (c : Circuit.t) =
    let path_str () =
      match path with
      | [] -> Printf.sprintf "<top> (%s)" (Circuit.name c)
      | _ ->
          Printf.sprintf "%s (%s)"
            (String.concat "." (List.rev path))
            (Circuit.name c)
    in
    let add_width name w =
      (match Hashtbl.find_opt origins name with
      | Some first ->
          invalid_arg
            (Printf.sprintf
               "Interp: duplicate flat signal %s: first declared in instance \
                %s, collides with a declaration in instance %s"
               name first (path_str ()))
      | None -> Hashtbl.add origins name (path_str ()));
      Hashtbl.add widths name w;
      decls := (name, w) :: !decls
    in
    let ren n = prefix ^ n in
    let rename_expr = Expr.map_vars ren in
    List.iter
      (fun (p : Circuit.port) ->
        (* Top-level inputs keep their names; instance ports are wires. *)
        add_width (ren p.port_name) p.port_width)
      c.ports;
    List.iter
      (fun (w : Circuit.signal) -> add_width (ren w.sig_name) w.sig_width)
      c.wires;
    List.iter
      (fun (r : Circuit.reg) ->
        add_width (ren r.reg_name) r.reg_width;
        regs :=
          { fr_name = ren r.reg_name; fr_init = r.init;
            fr_next = rename_expr r.next }
          :: !regs)
      c.regs;
    List.iter
      (fun (m : Circuit.memory) ->
        List.iter (fun (rd, _) -> add_width (ren rd) m.data_width) m.reads;
        mems :=
          {
            fm_name = ren m.mem_name;
            fm_width = m.data_width;
            fm_depth = m.depth;
            fm_init = m.init;
            fm_writes =
              List.map
                (fun (w : Circuit.mem_write) ->
                  {
                    Circuit.we = rename_expr w.we;
                    waddr = rename_expr w.waddr;
                    wdata = rename_expr w.wdata;
                  })
                m.writes;
            fm_reads =
              List.map (fun (rd, a) -> (ren rd, rename_expr a)) m.reads;
          }
          :: !mems)
      c.memories;
    List.iter
      (fun (a : Circuit.assign) ->
        assigns := (ren a.target, rename_expr a.expr) :: !assigns)
      c.assigns;
    List.iter
      (fun (i : Circuit.instance) ->
        let sub_prefix = prefix ^ i.inst_name ^ "$" in
        go sub_prefix (i.inst_name :: path) i.sub;
        List.iter
          (fun (p, e) -> assigns := (sub_prefix ^ p, rename_expr e) :: !assigns)
          i.in_connections;
        List.iter
          (fun (p, w) -> assigns := (ren w, Expr.Var (sub_prefix ^ p)) :: !assigns)
          i.out_connections)
      c.instances
  in
  go "" [] top;
  let top_inputs = Hashtbl.create 16 in
  List.iter
    (fun (p : Circuit.port) -> Hashtbl.add top_inputs p.port_name p.port_width)
    (Circuit.inputs top);
  ( List.rev !decls, top_inputs, List.rev !assigns, List.rev !regs,
    List.rev !mems )

(* ------------------------------------------------------------------ *)
(* Phase 2: compile expressions to closures over the value array.      *)
(* ------------------------------------------------------------------ *)

type compiled = unit -> Bits.t

let bits_true = Bits.of_bool true
let bits_false = Bits.of_bool false
let of_bool b = if b then bits_true else bits_false

let compile_expr ~slot (values : Bits.t array) e : compiled =
  let rec go e =
    match e with
    | Expr.Const b -> fun () -> b
    | Expr.Var v ->
        let s = slot v in
        fun () -> Array.unsafe_get values s
    | Expr.Select (e, hi, lo) ->
        let c = go e in
        fun () -> Bits.select (c ()) hi lo
    | Expr.Concat [ a; b ] ->
        let ca = go a and cb = go b in
        fun () -> Bits.concat (ca ()) (cb ())
    | Expr.Concat es ->
        let cs = Array.of_list (List.map go es) in
        if Array.length cs = 0 then invalid_arg "Interp: empty concat";
        fun () ->
          let acc = ref (cs.(0) ()) in
          for i = 1 to Array.length cs - 1 do
            acc := Bits.concat !acc (cs.(i) ())
          done;
          !acc
    | Expr.Unop (op, e) -> (
        let c = go e in
        match op with
        | Expr.Not -> fun () -> Bits.lognot (c ())
        | Expr.Reduce_or -> fun () -> of_bool (Bits.reduce_or (c ()))
        | Expr.Reduce_and -> fun () -> of_bool (Bits.reduce_and (c ()))
        | Expr.Reduce_xor -> fun () -> of_bool (Bits.reduce_xor (c ())))
    | Expr.Binop (op, a, b) -> (
        let ca = go a and cb = go b in
        match op with
        | Expr.And -> fun () -> Bits.logand (ca ()) (cb ())
        | Expr.Or -> fun () -> Bits.logor (ca ()) (cb ())
        | Expr.Xor -> fun () -> Bits.logxor (ca ()) (cb ())
        | Expr.Add -> fun () -> Bits.add (ca ()) (cb ())
        | Expr.Sub -> fun () -> Bits.sub (ca ()) (cb ())
        | Expr.Mul -> fun () -> Bits.mul (ca ()) (cb ())
        | Expr.Smul -> fun () -> Bits.smul (ca ()) (cb ())
        | Expr.Eq -> fun () -> of_bool (Bits.equal (ca ()) (cb ()))
        | Expr.Neq -> fun () -> of_bool (not (Bits.equal (ca ()) (cb ())))
        | Expr.Ult -> fun () -> of_bool (Bits.ult (ca ()) (cb ()))
        | Expr.Ule -> fun () -> of_bool (Bits.ule (ca ()) (cb ())))
    | Expr.Mux (c, a, b) ->
        let cc = go c and ca = go a and cb = go b in
        fun () -> if Bits.reduce_or (cc ()) then ca () else cb ()
    | Expr.Shift_left (e, k) ->
        let c = go e in
        fun () -> Bits.shift_left (c ()) k
    | Expr.Shift_right (e, k) ->
        let c = go e in
        fun () -> Bits.shift_right (c ()) k
  in
  go e

(* ------------------------------------------------------------------ *)
(* Runtime state                                                       *)
(* ------------------------------------------------------------------ *)

type creg = { cr_slot : int; cr_init : Bits.t; cr_next : compiled }

type cwrite = { cw_we : compiled; cw_addr : compiled; cw_data : compiled }

type cmem = {
  cm_name : string;
  cm_width : int;
  cm_depth : int;
  cm_init : Bits.t array; (* declared image; shorter than depth pads zero *)
  cm_arr : Bits.t array;
  cm_writes : cwrite array;
  (* Pre-edge sampling buffers: writes are sampled with pre-edge values
     for every port, then committed, without allocating per step. *)
  cm_we_buf : bool array;
  cm_addr_buf : int array;
  cm_data_buf : Bits.t array;
}

type snode = { sn_slot : int; sn_eval : compiled }

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

type fault = Stuck_at_0 | Stuck_at_1 | Flip of int

type injection = {
  inj_signal : string;
  inj_fault : fault;
  inj_start : int;
  inj_cycles : int;
}

(* Injection compiled against a slot.  [ci_driven] marks signals that are
   re-evaluated every settle (combinational targets) or committed on the
   clock edge (registers); the fault transform is applied at those points.
   Undriven slots (top inputs, floating wires) are transformed once per
   step, before settling. *)
type cinj = {
  ci_slot : int;
  ci_fault : fault;
  ci_start : int;
  ci_stop : int; (* exclusive *)
  ci_driven : bool;
}

type t = {
  slots : (string, int) Hashtbl.t; (* API boundary: flat name -> slot *)
  names : string array;            (* slot -> flat name *)
  top_inputs : (string, int) Hashtbl.t; (* input name -> slot *)
  values : Bits.t array;           (* slot -> current value *)
  sched : snode array;             (* levelized combinational schedule *)
  regs : creg array;
  mems : cmem array;
  arrays : (string, Bits.t array) Hashtbl.t; (* mem flat name -> words *)
  reg_next_buf : Bits.t array;     (* pre-edge samples of register nexts *)
  driven : bool array;             (* slot -> written by sched or a reg *)
  mutable cycle : int;             (* steps taken since create/reset *)
  mutable injections : cinj array;
  mutable inj_pending : cinj list; (* registered, not yet materialized;
                                      newest first *)
  active : (int, fault) Hashtbl.t; (* slot -> fault live this cycle *)
  mutable n_active : int;
  mutable observers : (int -> unit) array;
      (* called at the per-cycle sampling point; [||] on the hot path *)
  mutable obs_pending : (int -> unit) list; (* newest first *)
}

let apply_fault f v =
  let w = Bits.width v in
  match f with
  | Stuck_at_0 -> Bits.zero w
  | Stuck_at_1 -> Bits.ones w
  | Flip i ->
      if i < 0 || i >= w then v
      else Bits.logxor v (Bits.shift_left (Bits.of_int ~width:w 1) i)

let settle t =
  if t.n_active = 0 then begin
    let sched = t.sched and values = t.values in
    for i = 0 to Array.length sched - 1 do
      let n = Array.unsafe_get sched i in
      Array.unsafe_set values n.sn_slot (n.sn_eval ())
    done
  end
  else begin
    let sched = t.sched and values = t.values and active = t.active in
    for i = 0 to Array.length sched - 1 do
      let n = Array.unsafe_get sched i in
      let v = n.sn_eval () in
      let v =
        match Hashtbl.find_opt active n.sn_slot with
        | None -> v
        | Some f -> apply_fault f v
      in
      Array.unsafe_set values n.sn_slot v
    done
  end

let clock_edge t =
  (* Sample every next-state value with pre-edge signals, then commit. *)
  let regs = t.regs and buf = t.reg_next_buf in
  for i = 0 to Array.length regs - 1 do
    Array.unsafe_set buf i ((Array.unsafe_get regs i).cr_next ())
  done;
  if t.n_active > 0 then
    for i = 0 to Array.length regs - 1 do
      match Hashtbl.find_opt t.active regs.(i).cr_slot with
      | None -> ()
      | Some f -> buf.(i) <- apply_fault f buf.(i)
    done;
  Array.iter
    (fun m ->
      for j = 0 to Array.length m.cm_writes - 1 do
        let w = m.cm_writes.(j) in
        let we = Bits.reduce_or (w.cw_we ()) in
        m.cm_we_buf.(j) <- we;
        if we then begin
          m.cm_addr_buf.(j) <- Bits.to_int_trunc (w.cw_addr ());
          m.cm_data_buf.(j) <- w.cw_data ()
        end
      done)
    t.mems;
  for i = 0 to Array.length regs - 1 do
    t.values.(regs.(i).cr_slot) <- buf.(i)
  done;
  Array.iter
    (fun m ->
      for j = 0 to Array.length m.cm_writes - 1 do
        if m.cm_we_buf.(j) then begin
          let addr = m.cm_addr_buf.(j) in
          if addr < m.cm_depth then m.cm_arr.(addr) <- m.cm_data_buf.(j)
        end
      done)
    t.mems

let create top =
  let decls, input_widths, assigns, regs, mems = flatten top in
  (* Intern: declaration order fixes the slot numbering. *)
  let n = List.length decls in
  let slots = Hashtbl.create (2 * n) in
  let names = Array.make n "" in
  let values = Array.make n bits_false in
  List.iteri
    (fun i (name, w) ->
      Hashtbl.replace slots name i;
      names.(i) <- name;
      values.(i) <- Bits.zero w)
    decls;
  let slot name =
    match Hashtbl.find_opt slots name with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Interp: unknown signal %s" name)
  in
  let compile e = compile_expr ~slot values e in
  (* Memory storage. *)
  let arrays = Hashtbl.create 8 in
  let cmems =
    Array.of_list
      (List.map
         (fun m ->
           let arr =
             Array.init m.fm_depth (fun i ->
                 if i < Array.length m.fm_init then m.fm_init.(i)
                 else Bits.zero m.fm_width)
           in
           Hashtbl.replace arrays m.fm_name arr;
           let writes =
             Array.of_list
               (List.map
                  (fun (w : Circuit.mem_write) ->
                    {
                      cw_we = compile w.we;
                      cw_addr = compile w.waddr;
                      cw_data = compile w.wdata;
                    })
                  m.fm_writes)
           in
           let nw = Array.length writes in
           {
             cm_name = m.fm_name;
             cm_width = m.fm_width;
             cm_depth = m.fm_depth;
             cm_init = m.fm_init;
             cm_arr = arr;
             cm_writes = writes;
             cm_we_buf = Array.make (max 1 nw) false;
             cm_addr_buf = Array.make (max 1 nw) 0;
             cm_data_buf = Array.make (max 1 nw) bits_false;
           })
         mems)
  in
  (* Levelize: combinational assignments plus memory read ports, as one
     dependency graph over flat names. *)
  let node_bodies = Hashtbl.create (2 * List.length assigns) in
  List.iter
    (fun (tgt, e) -> Hashtbl.replace node_bodies tgt (`Assign e))
    assigns;
  List.iter
    (fun m ->
      List.iter
        (fun (rd, a) -> Hashtbl.replace node_bodies rd (`Memread (m, a)))
        m.fm_reads)
    mems;
  let graph =
    List.map (fun (tgt, e) -> (tgt, Expr.vars e)) assigns
    @ List.concat_map
        (fun m -> List.map (fun (rd, a) -> (rd, Expr.vars a)) m.fm_reads)
        mems
  in
  let order =
    try Depth.levelize graph
    with Depth.Combinational_cycle cycle ->
      invalid_arg
        ("Interp: combinational loop: " ^ String.concat " -> " cycle)
  in
  let sched =
    Array.of_list
      (List.map
         (fun (name, _level) ->
           let eval =
             match Hashtbl.find node_bodies name with
             | `Assign e -> compile e
             | `Memread (m, a) ->
                 let caddr = compile a in
                 let arr = Hashtbl.find arrays m.fm_name in
                 let depth = m.fm_depth in
                 let zero = Bits.zero m.fm_width in
                 fun () ->
                   let addr = Bits.to_int_trunc (caddr ()) in
                   if addr < depth then Array.unsafe_get arr addr else zero
           in
           { sn_slot = slot name; sn_eval = eval })
         order)
  in
  let cregs =
    Array.of_list
      (List.map
         (fun r ->
           {
             cr_slot = slot r.fr_name;
             cr_init = r.fr_init;
             cr_next = compile r.fr_next;
           })
         regs)
  in
  let top_inputs = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name _w -> Hashtbl.replace top_inputs name (slot name))
    input_widths;
  let driven = Array.make n false in
  Array.iter (fun sn -> driven.(sn.sn_slot) <- true) sched;
  Array.iter (fun (r : creg) -> driven.(r.cr_slot) <- true) cregs;
  let t =
    {
      slots;
      names;
      top_inputs;
      values;
      sched;
      regs = cregs;
      mems = cmems;
      arrays;
      reg_next_buf = Array.make (max 1 (Array.length cregs)) bits_false;
      driven;
      cycle = 0;
      injections = [||];
      inj_pending = [];
      active = Hashtbl.create 8;
      n_active = 0;
      observers = [||];
      obs_pending = [];
    }
  in
  settle t;
  t

let reset t =
  t.cycle <- 0;
  Hashtbl.reset t.active;
  t.n_active <- 0;
  Array.iter (fun r -> t.values.(r.cr_slot) <- r.cr_init) t.regs;
  Array.iter
    (fun m ->
      Array.iteri
        (fun i _ ->
          m.cm_arr.(i) <-
            (if i < Array.length m.cm_init then m.cm_init.(i)
             else Bits.zero m.cm_width))
        m.cm_arr)
    t.mems;
  settle t

let set_input t name v =
  match Hashtbl.find_opt t.top_inputs name with
  | None -> invalid_arg (Printf.sprintf "Interp: %s is not a top input" name)
  | Some s ->
      let w = Bits.width t.values.(s) in
      if Bits.width v <> w then
        invalid_arg
          (Printf.sprintf "Interp: input %s expects width %d, got %d" name w
             (Bits.width v));
      t.values.(s) <- v

(* Registration is O(1): new observers/injections accumulate in a list
   and are appended to the dispatch array in one batch the next time the
   array is consulted.  Rebuilding the array per registration was O(n²)
   over a campaign of n injections. *)
let materialize_observers t =
  (match t.obs_pending with
  | [] -> ()
  | pending ->
      t.observers <-
        Array.append t.observers (Array.of_list (List.rev pending));
      t.obs_pending <- []);
  t.observers

let materialize_injections t =
  match t.inj_pending with
  | [] -> ()
  | pending ->
      t.injections <-
        Array.append t.injections (Array.of_list (List.rev pending));
      t.inj_pending <- []

(* Recompute the set of faults live at [t.cycle].  Undriven slots (top
   inputs, floating wires) are transformed here, once per step: stuck
   faults override whatever [set_input] stored; a [Flip] is applied only
   on its first active cycle, so a multi-cycle flip does not toggle. *)
let refresh_active t =
  materialize_injections t;
  if Array.length t.injections > 0 || t.n_active > 0 then begin
    Hashtbl.reset t.active;
    t.n_active <- 0;
    Array.iter
      (fun ci ->
        if t.cycle >= ci.ci_start && t.cycle < ci.ci_stop then begin
          Hashtbl.replace t.active ci.ci_slot ci.ci_fault;
          t.n_active <- t.n_active + 1;
          if not ci.ci_driven then begin
            match ci.ci_fault with
            | Flip _ when t.cycle > ci.ci_start -> ()
            | f -> t.values.(ci.ci_slot) <- apply_fault f t.values.(ci.ci_slot)
          end
        end)
      t.injections
  end

let step t =
  (* Next-state functions sample the pre-edge combinational values; after
     the edge the combinational logic is re-settled so outputs reflect the
     new state. *)
  refresh_active t;
  settle t;
  (* Sampling point: observers see exactly the pre-edge values the
     registers are about to latch — the view a synthesized assertion
     sampled at the rising edge would have (faults included, since they
     are already folded into the settled values). *)
  (let obs = materialize_observers t in
   if Array.length obs > 0 then
     for i = 0 to Array.length obs - 1 do
       (Array.unsafe_get obs i) t.cycle
     done);
  clock_edge t;
  settle t;
  t.cycle <- t.cycle + 1

let run t n =
  for _ = 1 to n do
    step t
  done

let peek t name =
  match Hashtbl.find_opt t.slots name with
  | Some s -> t.values.(s)
  | None -> raise Not_found

let peek_int t name = Bits.to_int_trunc (peek t name)

let peek_mem t name addr =
  match Hashtbl.find_opt t.arrays name with
  | None -> raise Not_found
  | Some arr ->
      if addr < 0 || addr >= Array.length arr then
        invalid_arg "Interp.peek_mem: address out of range";
      arr.(addr)

let poke_mem t name addr v =
  match Hashtbl.find_opt t.arrays name with
  | None -> raise Not_found
  | Some arr ->
      if addr < 0 || addr >= Array.length arr then
        invalid_arg "Interp.poke_mem: address out of range";
      arr.(addr) <- v

let signal_names t = Array.to_list t.names |> List.sort compare

let reader t name =
  match Hashtbl.find_opt t.slots name with
  | None -> raise Not_found
  | Some s -> fun () -> t.values.(s)

let on_cycle t f = t.obs_pending <- f :: t.obs_pending

let clear_observers t =
  t.observers <- [||];
  t.obs_pending <- []

let memories t =
  Array.to_list (Array.map (fun m -> (m.cm_name, m.cm_depth)) t.mems)
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Fault-injection API                                                 *)
(* ------------------------------------------------------------------ *)

let current_cycle t = t.cycle

let inject t injs =
  let compile_inj inj =
    let s =
      match Hashtbl.find_opt t.slots inj.inj_signal with
      | Some s -> s
      | None ->
          invalid_arg
            (Printf.sprintf "Interp.inject: unknown signal %s" inj.inj_signal)
    in
    if inj.inj_start < 0 then
      invalid_arg
        (Printf.sprintf "Interp.inject: %s: negative start cycle"
           inj.inj_signal);
    if inj.inj_cycles < 1 then
      invalid_arg
        (Printf.sprintf "Interp.inject: %s: duration must be >= 1 cycle"
           inj.inj_signal);
    (match inj.inj_fault with
    | Flip i ->
        let w = Bits.width t.values.(s) in
        if i < 0 || i >= w then
          invalid_arg
            (Printf.sprintf "Interp.inject: %s: flip bit %d out of range 0..%d"
               inj.inj_signal i (w - 1))
    | Stuck_at_0 | Stuck_at_1 -> ());
    {
      ci_slot = s;
      ci_fault = inj.inj_fault;
      ci_start = inj.inj_start;
      ci_stop = inj.inj_start + inj.inj_cycles;
      ci_driven = t.driven.(s);
    }
  in
  (* Validate (and resolve slots) eagerly so errors surface at the call,
     but defer the array rebuild to the next [refresh_active]. *)
  List.iter
    (fun inj -> t.inj_pending <- compile_inj inj :: t.inj_pending)
    injs

let clear_injections t =
  t.injections <- [||];
  t.inj_pending <- [];
  Hashtbl.reset t.active;
  t.n_active <- 0

(* ------------------------------------------------------------------ *)
(* State snapshot                                                      *)
(* ------------------------------------------------------------------ *)

type state = {
  st_cycle : int;
  st_values : (string * Bits.t) array;
  st_mems : (string * Bits.t array) array;
}

let export_state t =
  {
    st_cycle = t.cycle;
    st_values = Array.mapi (fun i v -> (t.names.(i), v)) t.values;
    st_mems = Array.map (fun m -> (m.cm_name, Array.copy m.cm_arr)) t.mems;
  }

let import_state t st =
  if st.st_cycle < 0 then invalid_arg "Interp.import_state: negative cycle";
  if Array.length st.st_values <> Array.length t.values then
    invalid_arg
      (Printf.sprintf
         "Interp.import_state: snapshot has %d signals, design has %d"
         (Array.length st.st_values) (Array.length t.values));
  Array.iter
    (fun (name, v) ->
      match Hashtbl.find_opt t.slots name with
      | None ->
          invalid_arg
            (Printf.sprintf "Interp.import_state: unknown signal %s" name)
      | Some s ->
          let w = Bits.width t.values.(s) in
          if Bits.width v <> w then
            invalid_arg
              (Printf.sprintf
                 "Interp.import_state: %s: snapshot width %d, design width %d"
                 name (Bits.width v) w);
          t.values.(s) <- v)
    st.st_values;
  Array.iter
    (fun (name, words) ->
      match Hashtbl.find_opt t.arrays name with
      | None ->
          invalid_arg
            (Printf.sprintf "Interp.import_state: unknown memory %s" name)
      | Some arr ->
          if Array.length words <> Array.length arr then
            invalid_arg
              (Printf.sprintf
                 "Interp.import_state: memory %s: snapshot depth %d, design \
                  depth %d"
                 name (Array.length words) (Array.length arr));
          Array.blit words 0 arr 0 (Array.length arr))
    st.st_mems;
  (* The snapshot was taken post-step, so every value is already settled;
     faults live at the snapshot cycle re-arm at the next [step] via
     [refresh_active] against whatever injections the caller installed. *)
  Hashtbl.reset t.active;
  t.n_active <- 0;
  t.cycle <- st.st_cycle

(* Deterministic campaign descriptor: a small LCG (same recurrence used
   by the transaction-level simulator) over the sorted signal-name list,
   so a given (design, seed, n, horizon) always yields the same faults. *)
let random_campaign t ~seed ~n ~horizon =
  if n < 0 then invalid_arg "Interp.random_campaign: negative n";
  if horizon < 1 then invalid_arg "Interp.random_campaign: horizon must be >= 1";
  let names = Array.of_list (signal_names t) in
  if Array.length names = 0 then []
  else begin
    let lcg = ref (seed land 0x3FFFFFFF) in
    let next m =
      lcg := ((!lcg * 1664525) + 1013904223) land 0x3FFFFFFF;
      !lcg mod max 1 m
    in
    List.init n (fun _ ->
        let name = names.(next (Array.length names)) in
        let w = Bits.width t.values.(Hashtbl.find t.slots name) in
        let fault =
          match next 3 with
          | 0 -> Stuck_at_0
          | 1 -> Stuck_at_1
          | _ -> Flip (next w)
        in
        let start = next horizon in
        let cycles = 1 + next 4 in
        { inj_signal = name; inj_fault = fault; inj_start = start;
          inj_cycles = cycles })
  end
