(** Reference interpreter: the original string-keyed, tree-walking
    evaluation engine, kept as the executable specification of the
    simulation semantics.

    {!Interp} (the slot-compiled engine that replaced this one on the
    hot path) must agree with this module bit for bit; the differential
    tests in [test/test_rtl.ml] enforce that on every generated bus
    architecture.  Use {!Interp} everywhere else — this engine re-walks
    every expression tree with hashtable lookups per signal per cycle
    and is an order of magnitude slower. *)

type t

val create : Circuit.t -> t
(** Flatten and schedule the design.
    @raise Invalid_argument on combinational loops. *)

val reset : t -> unit
val set_input : t -> string -> Bits.t -> unit
val settle : t -> unit
val step : t -> unit
val run : t -> int -> unit

val peek : t -> string -> Bits.t
(** @raise Not_found if unknown. *)

val peek_int : t -> string -> int
val peek_mem : t -> string -> int -> Bits.t
val poke_mem : t -> string -> int -> Bits.t -> unit

val signal_names : t -> string list
(** All flat signal names, sorted. *)

val memories : t -> (string * int) list
(** All flattened memories as [(flat name, depth)], sorted. *)

val on_cycle : t -> (int -> unit) -> unit
(** Register a per-cycle observer.  Same sampling point as
    {!Interp.on_cycle}: after the combinational settle with the cycle's
    inputs, before the clock edge. *)

val clear_observers : t -> unit

val reader : t -> string -> unit -> Bits.t
(** Accessor for a flat signal (hashes the name per call — this is the
    slow engine).  @raise Not_found if the signal is unknown. *)

val random_campaign : t -> seed:int -> n:int -> horizon:int -> Interp.injection list
(** Identical stream to {!Interp.random_campaign} for the same circuit
    and arguments (same LCG over the same sorted name list). *)

val inject : t -> Interp.injection list -> unit
(** Mirror of {!Interp.inject} (same campaign descriptors), so faulty
    runs of both engines can be compared differentially.
    @raise Invalid_argument on unknown signals or bad schedules. *)

val clear_injections : t -> unit

val current_cycle : t -> int
(** Steps taken since [create]/[reset]. *)

val export_state : t -> Interp.state
(** Snapshot the current state.  Shares {!Interp.state} so a checkpoint
    written by one engine can restore the other — the flattening (and
    therefore the flat-name universe) is identical. *)

val import_state : t -> Interp.state -> unit
(** Restore a snapshot into an engine created from the same circuit.
    @raise Invalid_argument on unknown names or width/depth mismatch. *)
