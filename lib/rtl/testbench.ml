type t = {
  circuit : Circuit.t option;
  sim : Engine.t;
  widths : (string, int) Hashtbl.t; (* input ports *)
  mutable cycle_count : int;
}

exception Timeout of string
exception Mismatch of string

let input_widths circuit =
  let widths = Hashtbl.create 16 in
  List.iter
    (fun (p : Circuit.port) ->
      Hashtbl.replace widths p.Circuit.port_name p.Circuit.port_width)
    (Circuit.inputs circuit);
  widths

let create ?engine circuit =
  let sim = Engine.create ?kind:engine circuit in
  Engine.reset sim;
  let widths = input_widths circuit in
  Hashtbl.iter
    (fun name width -> Engine.set_input sim name (Bits.zero width))
    widths;
  Engine.settle sim;
  { circuit = Some circuit; sim; widths; cycle_count = 0 }

let of_engine sim =
  { circuit = None; sim; widths = Hashtbl.create 0; cycle_count = 0 }

let of_interp sim = of_engine (Engine.of_interp sim)

let engine t = t.sim

let input_width t name =
  match Hashtbl.find_opt t.widths name with
  | Some w -> w
  | None -> (
      (* Unknown (wrapped engine): infer from the current value. *)
      try Bits.width (Engine.peek t.sim name)
      with Not_found ->
        invalid_arg (Printf.sprintf "Testbench.drive: unknown input %s" name))

let drive t name v =
  Engine.set_input t.sim name (Bits.of_int ~width:(input_width t name) v)

let drive_many t l = List.iter (fun (n, v) -> drive t n v) l

let step t ?(n = 1) () =
  t.cycle_count <- t.cycle_count + n;
  Engine.run t.sim n

let cycles t = t.cycle_count

let settle t = Engine.settle t.sim

let peek t name = Engine.peek_int t.sim name

let peek_signed t name = Bits.to_signed_int_exn (Engine.peek t.sim name)

let expect t name want =
  Engine.settle t.sim;
  let got = peek t name in
  if got <> want then
    raise
      (Mismatch (Printf.sprintf "%s: got 0x%x, want 0x%x" name got want))

let wait_for t ?(timeout = 1000) name value =
  let rec go n =
    if n > timeout then
      raise
        (Timeout
           (Printf.sprintf "%s did not reach 0x%x within %d cycles" name value
              timeout))
    else begin
      Engine.settle t.sim;
      if peek t name = value then ()
      else begin
        t.cycle_count <- t.cycle_count + 1;
        Engine.step t.sim;
        go (n + 1)
      end
    end
  in
  go 0

let pulse t name =
  drive t name 1;
  step t ();
  drive t name 0

module Cpu = struct
  let p pe s = Printf.sprintf "cpu%d_%s" pe s

  let transaction t ~pe ~rnw ~addr ~wdata =
    drive t (p pe "req") 1;
    drive t (p pe "rnw") (if rnw then 1 else 0);
    drive t (p pe "addr") addr;
    drive t (p pe "wdata") wdata;
    step t ();
    drive t (p pe "req") 0;
    (try wait_for t ~timeout:1000 (p pe "ack") 1
     with Timeout _ ->
       raise
         (Timeout
            (Printf.sprintf "pe%d: no acknowledge for address 0x%x" pe addr)));
    let v = Engine.peek t.sim (p pe "rdata") in
    step t ();
    v

  let write t ~pe ~addr v = ignore (transaction t ~pe ~rnw:false ~addr ~wdata:v)

  let read t ~pe ~addr =
    Bits.to_int_trunc (transaction t ~pe ~rnw:true ~addr ~wdata:0)

  let read_signed t ~pe ~addr =
    Bits.to_signed_int_exn (transaction t ~pe ~rnw:true ~addr ~wdata:0)

  let check_read t ~pe ~addr want =
    let got = read t ~pe ~addr in
    if got <> want then
      raise
        (Mismatch
           (Printf.sprintf "pe%d read of 0x%x: got 0x%x, want 0x%x" pe addr
              got want))

  let irq t ~pe =
    match Engine.peek t.sim (p pe "irq") with
    | v -> Bits.reduce_or v
    | exception Not_found -> false
end
