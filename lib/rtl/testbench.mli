(** Self-checking testbench driver for {!Engine} simulations.

    Wraps an evaluation engine with named drive/expect/wait operations
    and descriptive failures, so protocol tests read as transactions
    instead of raw pokes.  All values are given as OCaml ints (convenient
    for bus tests; widths are taken from the design). *)

type t

exception Timeout of string
(** Raised by the wait combinators, naming the condition. *)

exception Mismatch of string
(** Raised by {!expect}, naming signal, got and want. *)

val create : ?engine:Engine.kind -> Circuit.t -> t
(** Build the engine (default {!Engine.default_kind}), reset it, and
    drive every input to zero. *)

val of_engine : Engine.t -> t
(** Wrap an existing simulation (inputs are left as they are). *)

val of_interp : Interp.t -> t
(** Wrap an existing slot-engine simulation (inputs are left as they
    are). *)

val engine : t -> Engine.t

val drive : t -> string -> int -> unit
(** Set an input (truncated to the port width). *)

val drive_many : t -> (string * int) list -> unit

val step : t -> ?n:int -> unit -> unit

val cycles : t -> int
(** Clock cycles stepped so far (via {!step} and everything built on
    it, e.g. {!wait_for} and the {!Cpu} transactions). *)

val settle : t -> unit
(** Re-evaluate combinational logic after {!drive} without advancing the
    clock. *)

val peek : t -> string -> int
val peek_signed : t -> string -> int

val expect : t -> string -> int -> unit
(** Settle, then compare a signal against the expected value.
    @raise Mismatch on difference. *)

val wait_for : t -> ?timeout:int -> string -> int -> unit
(** Step until the signal equals the value (default timeout 1000 cycles).
    @raise Timeout when exceeded. *)

val pulse : t -> string -> unit
(** Drive the 1-bit input high for one cycle, then low. *)

(** A CPU-socket master for generated Bus Systems: the [cpu<k>_*] port
    bundle every architecture exposes. *)
module Cpu : sig
  val write : t -> pe:int -> addr:int -> int -> unit
  (** Issue a write transaction and wait for the acknowledge.
      @raise Timeout if the bus never answers. *)

  val read : t -> pe:int -> addr:int -> int
  (** Issue a read transaction; returns the data. *)

  val read_signed : t -> pe:int -> addr:int -> int
  (** Like {!read}, decoding the bus word as two's complement. *)

  val check_read : t -> pe:int -> addr:int -> int -> unit
  (** {!read} then compare. @raise Mismatch on difference. *)

  val irq : t -> pe:int -> bool
  (** Current level of [cpu<k>_irq] (false if the port is absent). *)
end
