(** One handle over the three evaluation engines.

    Downstream subsystems (testbench, property monitors, fault
    campaigns, checkpoint/soak drivers, CLI) hold an {!t} instead of a
    concrete engine, so [--engine ref|slot|tape] swaps the evaluator
    without touching them.  All three engines share the flat-name
    universe and {!Interp.state} snapshot layout, so cross-engine
    checkpoint restore works by construction. *)

type kind = Ref | Slot | Tape

val kind_of_string : string -> (kind, string) result
(** ["ref"], ["slot"] or ["tape"]; [Error] carries a one-line message
    suitable for stderr. *)

val kind_to_string : kind -> string

val all_kinds : kind list
(** [[Ref; Slot; Tape]], for test matrices. *)

val default_kind : kind
(** {!Tape} — the fastest engine, held bit-exact against the others by
    the three-way differential suite. *)

type t

val create : ?kind:kind -> Circuit.t -> t
(** Flatten and compile the design with the chosen engine
    (default {!default_kind}).
    @raise Invalid_argument on combinational loops. *)

val of_interp : Interp.t -> t
(** Wrap an existing slot engine (legacy call sites). *)

val kind : t -> kind

val reset : t -> unit
val set_input : t -> string -> Bits.t -> unit
val settle : t -> unit
val step : t -> unit
val run : t -> int -> unit

val peek : t -> string -> Bits.t
(** @raise Not_found if unknown. *)

val peek_int : t -> string -> int
val peek_mem : t -> string -> int -> Bits.t
val poke_mem : t -> string -> int -> Bits.t -> unit
val signal_names : t -> string list
val memories : t -> (string * int) list

val on_cycle : t -> (int -> unit) -> unit
val clear_observers : t -> unit

val reader : t -> string -> unit -> Bits.t
(** @raise Not_found if the signal is unknown. *)

val inject : t -> Interp.injection list -> unit
val clear_injections : t -> unit
val current_cycle : t -> int

val export_state : t -> Interp.state
val import_state : t -> Interp.state -> unit

val random_campaign :
  t -> seed:int -> n:int -> horizon:int -> Interp.injection list
(** Engine-independent: all three engines draw the identical stream for
    the same circuit and arguments. *)
