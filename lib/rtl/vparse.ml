(* A recursive-descent parser specialised to the emitter's output shape:
   every operator application is parenthesised, declarations precede
   statements, and the single always block has the fixed
   reset/next-state structure. *)

type vmodule = {
  vname : string;
  vinputs : (string * int) list;
  voutputs : (string * int) list;
  vwires : (string * int) list;
  vregs : (string * int) list;
  vmems : (string * int * int) list;
  vassigns : (string * Expr.t) list;
  vresets : (string * Bits.t) list;
  vmem_inits : (string * int * Bits.t) list;
  vnexts : (string * Expr.t) list;
  vmem_writes : (Expr.t * string * Expr.t * Expr.t) list;
  vinstances : (string * string * (string * Expr.t) list) list;
}

let read_marker ~mem ~addr =
  Expr.Concat [ Expr.Var ("$memread$" ^ mem); addr ]

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | T_ident of string
  | T_number of int
  | T_literal of string (* full Verilog literal, e.g. 8'h2a *)
  | T_punct of string   (* ( ) [ ] { } , ; : ? . @ *)
  | T_op of string      (* ~ & | ^ + - * == != < <= << >> = *)
  | T_eof

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let push t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '$'
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      (* line comment (e.g. the provenance header) — skip to newline,
         which the outer loop then counts *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c >= '0' && c <= '9' then begin
      (* A number; if followed by a tick it is a sized literal. *)
      let j = ref !i in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do
        incr j
      done;
      if !j < n && src.[!j] = '\'' then begin
        let k = ref (!j + 1) in
        if !k < n then incr k; (* base char *)
        while
          !k < n
          && (is_ident_char src.[!k] || (src.[!k] >= '0' && src.[!k] <= '9'))
        do
          incr k
        done;
        push (T_literal (String.sub src !i (!k - !i)));
        i := !k
      end
      else begin
        push (T_number (int_of_string (String.sub src !i (!j - !i))));
        i := !j
      end
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      push (T_ident (String.sub src !i (!j - !i)));
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | "<<" | ">>" ->
          push (T_op two);
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | '[' | ']' | '{' | '}' | ',' | ';' | ':' | '?' | '.'
          | '@' ->
              push (T_punct (String.make 1 c));
              incr i
          | '~' | '&' | '|' | '^' | '+' | '-' | '*' | '<' | '=' ->
              push (T_op (String.make 1 c));
              incr i
          | _ -> fail "line %d: unexpected character %C" !line c)
    end
  done;
  push T_eof;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Token stream                                                        *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : (token * int) list }

let current s =
  match s.toks with (t, _) :: _ -> t | [] -> T_eof

let current_line s = match s.toks with (_, l) :: _ -> l | [] -> 0

let advance s =
  match s.toks with _ :: rest -> s.toks <- rest | [] -> ()

let describe = function
  | T_ident x -> Printf.sprintf "identifier %s" x
  | T_number x -> Printf.sprintf "number %d" x
  | T_literal x -> Printf.sprintf "literal %s" x
  | T_punct x | T_op x -> Printf.sprintf "%S" x
  | T_eof -> "end of input"

let expect_punct s p =
  match current s with
  | T_punct q when q = p -> advance s
  | t -> fail "line %d: expected %S, found %s" (current_line s) p (describe t)

let expect_op s p =
  match current s with
  | T_op q when q = p -> advance s
  | t -> fail "line %d: expected %S, found %s" (current_line s) p (describe t)

let expect_kw s kw =
  match current s with
  | T_ident i when i = kw -> advance s
  | t -> fail "line %d: expected %S, found %s" (current_line s) kw (describe t)

let ident s =
  match current s with
  | T_ident i ->
      advance s;
      i
  | t -> fail "line %d: expected an identifier, found %s" (current_line s) (describe t)

let number s =
  match current s with
  | T_number v ->
      advance s;
      v
  | t -> fail "line %d: expected a number, found %s" (current_line s) (describe t)

(* ------------------------------------------------------------------ *)
(* Expressions (emitter-shaped)                                        *)
(* ------------------------------------------------------------------ *)

let binop_of = function
  | "&" -> Expr.And
  | "|" -> Expr.Or
  | "^" -> Expr.Xor
  | "+" -> Expr.Add
  | "-" -> Expr.Sub
  | "*" -> Expr.Mul
  | "==" -> Expr.Eq
  | "!=" -> Expr.Neq
  | "<" -> Expr.Ult
  | "<=" -> Expr.Ule
  | op -> fail "unknown operator %S" op

let rec parse_expr ~mems s =
  match current s with
  | T_literal l ->
      advance s;
      Expr.Const (Bits.of_string l)
  | T_ident name ->
      advance s;
      if current s = T_punct "[" then begin
        advance s;
        if List.mem name mems then begin
          (* Memory read: mem[addr_expr]. *)
          let addr = parse_expr ~mems s in
          expect_punct s "]";
          read_marker ~mem:name ~addr
        end
        else begin
          let hi = number s in
          let lo =
            if current s = T_punct ":" then begin
              advance s;
              number s
            end
            else hi
          in
          expect_punct s "]";
          Expr.Select (Expr.Var name, hi, lo)
        end
      end
      else Expr.Var name
  | T_punct "{" -> parse_concat ~mems s
  | T_punct "(" -> parse_paren ~mems s
  | t ->
      fail "line %d: expected an expression, found %s" (current_line s)
        (describe t)

and parse_concat ~mems s =
  expect_punct s "{";
  let rec go acc =
    let e = parse_expr ~mems s in
    match current s with
    | T_punct "," ->
        advance s;
        go (e :: acc)
    | T_punct "}" ->
        advance s;
        List.rev (e :: acc)
    | t ->
        fail "line %d: expected ',' or '}', found %s" (current_line s)
          (describe t)
  in
  Expr.Concat (go [])

and parse_paren ~mems s =
  expect_punct s "(";
  let finish e =
    expect_punct s ")";
    e
  in
  match current s with
  | T_op "~" ->
      advance s;
      finish (Expr.Unop (Expr.Not, parse_expr ~mems s))
  | T_op "|" ->
      advance s;
      finish (Expr.Unop (Expr.Reduce_or, parse_expr ~mems s))
  | T_op "&" ->
      advance s;
      finish (Expr.Unop (Expr.Reduce_and, parse_expr ~mems s))
  | T_op "^" ->
      advance s;
      finish (Expr.Unop (Expr.Reduce_xor, parse_expr ~mems s))
  | T_ident "$signed" ->
      (* ($signed(a) * $signed(b)) *)
      advance s;
      expect_punct s "(";
      let a = parse_expr ~mems s in
      expect_punct s ")";
      expect_op s "*";
      expect_kw s "$signed";
      expect_punct s "(";
      let b = parse_expr ~mems s in
      expect_punct s ")";
      finish (Expr.Binop (Expr.Smul, a, b))
  | _ -> (
      let a = parse_expr ~mems s in
      match current s with
      | T_punct "?" ->
          advance s;
          let t = parse_expr ~mems s in
          expect_punct s ":";
          let f = parse_expr ~mems s in
          finish (Expr.Mux (a, t, f))
      | T_op "<<" ->
          advance s;
          let k = number s in
          finish (Expr.Shift_left (a, k))
      | T_op ">>" ->
          advance s;
          let k = number s in
          finish (Expr.Shift_right (a, k))
      | T_punct "[" ->
          (* ({...}[h:l]) — select of a general expression. *)
          advance s;
          let hi = number s in
          expect_punct s ":";
          let lo = number s in
          expect_punct s "]";
          (* The emitter wraps the sliced expression in a singleton
             concat ("({e}[h:l])"); unwrap it so round-trips are exact. *)
          let a = match a with Expr.Concat [ e ] -> e | _ -> a in
          finish (Expr.Select (a, hi, lo))
      | T_op op ->
          advance s;
          let b = parse_expr ~mems s in
          finish (Expr.Binop (binop_of op, a, b))
      | T_punct ")" -> finish a
      | t ->
          fail "line %d: unexpected %s inside parentheses" (current_line s)
            (describe t))

(* ------------------------------------------------------------------ *)
(* Module structure                                                    *)
(* ------------------------------------------------------------------ *)

let parse_range s =
  (* Optional [w-1:0] after input/output/wire/reg; returns the width. *)
  if current s = T_punct "[" then begin
    advance s;
    let hi = number s in
    expect_punct s ":";
    let lo = number s in
    expect_punct s "]";
    if lo <> 0 then fail "line %d: only [w-1:0] ranges are emitted" (current_line s);
    hi + 1
  end
  else 1

let parse_always ~mems s acc_resets acc_mem_inits acc_nexts acc_writes =
  (* always @(posedge clk) begin if (rst) begin .. end else begin .. end end *)
  expect_punct s "@";
  expect_punct s "(";
  expect_kw s "posedge";
  expect_kw s "clk";
  expect_punct s ")";
  expect_kw s "begin";
  expect_kw s "if";
  expect_punct s "(";
  expect_kw s "rst";
  expect_punct s ")";
  expect_kw s "begin";
  let rec resets () =
    match current s with
    | T_ident "end" -> advance s
    | T_ident name -> (
        advance s;
        match current s with
        | T_punct "[" ->
            (* mem[idx] <= literal;  — memory initialization. *)
            advance s;
            let idx = number s in
            expect_punct s "]";
            expect_op s "<=";
            (match current s with
            | T_literal l ->
                advance s;
                acc_mem_inits := (name, idx, Bits.of_string l) :: !acc_mem_inits
            | t ->
                fail "line %d: memory init expects a literal, found %s"
                  (current_line s) (describe t));
            expect_punct s ";";
            resets ()
        | _ ->
            expect_op s "<=";
            (match current s with
            | T_literal l ->
                advance s;
                acc_resets := (name, Bits.of_string l) :: !acc_resets
            | t ->
                fail "line %d: reset arm expects a literal, found %s"
                  (current_line s) (describe t));
            expect_punct s ";";
            resets ())
    | t -> fail "line %d: unexpected %s in reset arm" (current_line s) (describe t)
  in
  resets ();
  expect_kw s "else";
  expect_kw s "begin";
  let rec nexts () =
    match current s with
    | T_ident "end" -> advance s
    | T_ident "if" ->
        (* if (guard) mem[addr] <= data; *)
        advance s;
        expect_punct s "(";
        let guard = parse_expr ~mems s in
        expect_punct s ")";
        let mem = ident s in
        expect_punct s "[";
        let addr = parse_expr ~mems s in
        expect_punct s "]";
        expect_op s "<=";
        let data = parse_expr ~mems s in
        expect_punct s ";";
        acc_writes := (guard, mem, addr, data) :: !acc_writes;
        nexts ()
    | T_ident name ->
        advance s;
        expect_op s "<=";
        let e = parse_expr ~mems s in
        expect_punct s ";";
        acc_nexts := (name, e) :: !acc_nexts;
        nexts ()
    | t -> fail "line %d: unexpected %s in always body" (current_line s) (describe t)
  in
  nexts ();
  expect_kw s "end"

let parse_module_stream s =
  expect_kw s "module";
  let vname = ident s in
  expect_punct s "(";
  let rec port_names acc =
    let p = ident s in
    match current s with
    | T_punct "," ->
        advance s;
        port_names (p :: acc)
    | T_punct ")" ->
        advance s;
        List.rev (p :: acc)
    | t ->
        fail "line %d: expected ',' or ')', found %s" (current_line s)
          (describe t)
  in
  let _names = port_names [] in
  expect_punct s ";";
  let vinputs = ref [] in
  let voutputs = ref [] in
  let vwires = ref [] in
  let vregs = ref [] in
  let vmems = ref [] in
  let vassigns = ref [] in
  let vresets = ref [] in
  let vmem_inits = ref [] in
  let vnexts = ref [] in
  let vmem_writes = ref [] in
  let vinstances = ref [] in
  let mem_names () = List.map (fun (n, _, _) -> n) !vmems in
  let rec body () =
    match current s with
    | T_ident "endmodule" -> advance s
    | T_ident "input" ->
        advance s;
        let w = parse_range s in
        let n = ident s in
        expect_punct s ";";
        vinputs := (n, w) :: !vinputs;
        body ()
    | T_ident "output" ->
        advance s;
        let w = parse_range s in
        let n = ident s in
        expect_punct s ";";
        voutputs := (n, w) :: !voutputs;
        body ()
    | T_ident "wire" ->
        advance s;
        let w = parse_range s in
        let n = ident s in
        expect_punct s ";";
        vwires := (n, w) :: !vwires;
        body ()
    | T_ident "reg" ->
        advance s;
        let w = parse_range s in
        let n = ident s in
        if current s = T_punct "[" then begin
          (* Memory: reg [..] name [0:depth-1]; *)
          advance s;
          let lo = number s in
          expect_punct s ":";
          let hi = number s in
          expect_punct s "]";
          expect_punct s ";";
          if lo <> 0 then fail "memory range must start at 0";
          vmems := (n, w, hi + 1) :: !vmems
        end
        else begin
          expect_punct s ";";
          vregs := (n, w) :: !vregs
        end;
        body ()
    | T_ident "assign" ->
        advance s;
        let lhs = ident s in
        expect_op s "=";
        let e = parse_expr ~mems:(mem_names ()) s in
        expect_punct s ";";
        vassigns := (lhs, e) :: !vassigns;
        body ()
    | T_ident "always" ->
        advance s;
        parse_always ~mems:(mem_names ()) s vresets vmem_inits vnexts
          vmem_writes;
        body ()
    | T_ident sub ->
        (* Instance: sub inst ( .port(expr), ... ); *)
        advance s;
        let inst = ident s in
        expect_punct s "(";
        let rec conns acc =
          expect_punct s ".";
          let port = ident s in
          expect_punct s "(";
          let e = parse_expr ~mems:(mem_names ()) s in
          expect_punct s ")";
          match current s with
          | T_punct "," ->
              advance s;
              conns ((port, e) :: acc)
          | T_punct ")" ->
              advance s;
              List.rev ((port, e) :: acc)
          | t ->
              fail "line %d: expected ',' or ')', found %s" (current_line s)
                (describe t)
        in
        let cs = conns [] in
        expect_punct s ";";
        vinstances := (sub, inst, cs) :: !vinstances;
        body ()
    | t ->
        fail "line %d: unexpected %s in module body" (current_line s)
          (describe t)
  in
  body ();
  {
    vname;
    vinputs = List.rev !vinputs;
    voutputs = List.rev !voutputs;
    vwires = List.rev !vwires;
    vregs = List.rev !vregs;
    vmems = List.rev !vmems;
    vassigns = List.rev !vassigns;
    vresets = List.rev !vresets;
    vmem_inits = List.rev !vmem_inits;
    vnexts = List.rev !vnexts;
    vmem_writes = List.rev !vmem_writes;
    vinstances = List.rev !vinstances;
  }

let parse_module src =
  match
    let s = { toks = lex src } in
    let m = parse_module_stream s in
    (match current s with
    | T_eof -> ()
    | t -> fail "trailing %s after endmodule" (describe t));
    m
  with
  | m -> Ok m
  | exception Parse_error msg -> Error msg

let parse_design src =
  match
    let s = { toks = lex src } in
    let rec go acc =
      match current s with
      | T_eof -> List.rev acc
      | _ -> go (parse_module_stream s :: acc)
    in
    go []
  with
  | ms -> Ok ms
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Equivalence                                                         *)
(* ------------------------------------------------------------------ *)

let matches_circuit (vm : vmodule) (c : Circuit.t) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if vm.vname <> Circuit.name c then
    err "module name %s <> circuit %s" vm.vname (Circuit.name c);
  let sort l = List.sort compare l in
  let check_set what got want =
    if sort got <> sort want then
      err "%s differ: parsed %d entries, circuit has %d" what
        (List.length got) (List.length want)
  in
  let stateful = Circuit.has_state c in
  let want_inputs =
    (if stateful then [ ("clk", 1); ("rst", 1) ] else [])
    @ List.map
        (fun (p : Circuit.port) -> (p.Circuit.port_name, p.Circuit.port_width))
        (Circuit.inputs c)
  in
  check_set "inputs" vm.vinputs want_inputs;
  check_set "outputs" vm.voutputs
    (List.map
       (fun (p : Circuit.port) -> (p.Circuit.port_name, p.Circuit.port_width))
       (Circuit.outputs c));
  let want_wires =
    List.map
      (fun (w : Circuit.signal) -> (w.Circuit.sig_name, w.Circuit.sig_width))
      c.Circuit.wires
    @ List.concat_map
        (fun (m : Circuit.memory) ->
          List.map (fun (rd, _) -> (rd, m.Circuit.data_width)) m.Circuit.reads)
        c.Circuit.memories
  in
  check_set "wires" vm.vwires want_wires;
  check_set "regs" vm.vregs
    (List.map
       (fun (r : Circuit.reg) -> (r.Circuit.reg_name, r.Circuit.reg_width))
       c.Circuit.regs);
  check_set "memories" vm.vmems
    (List.map
       (fun (m : Circuit.memory) ->
         (m.Circuit.mem_name, m.Circuit.data_width, m.Circuit.depth))
       c.Circuit.memories);
  (* Assignments: circuit assigns plus memory reads. *)
  let want_assigns =
    List.map (fun (a : Circuit.assign) -> (a.Circuit.target, a.Circuit.expr))
      c.Circuit.assigns
    @ List.concat_map
        (fun (m : Circuit.memory) ->
          List.map
            (fun (rd, addr) -> (rd, read_marker ~mem:m.Circuit.mem_name ~addr))
            m.Circuit.reads)
        c.Circuit.memories
  in
  List.iter
    (fun (tgt, want) ->
      match List.assoc_opt tgt vm.vassigns with
      | Some got when got = want -> ()
      | Some _ -> err "assign %s: expression differs" tgt
      | None -> err "assign %s missing from the Verilog" tgt)
    want_assigns;
  if List.length vm.vassigns <> List.length want_assigns then
    err "assign count: parsed %d, circuit %d" (List.length vm.vassigns)
      (List.length want_assigns);
  (* Registers: reset values and next-state expressions. *)
  List.iter
    (fun (r : Circuit.reg) ->
      (match List.assoc_opt r.Circuit.reg_name vm.vresets with
      | Some v when Bits.equal v r.Circuit.init -> ()
      | Some _ -> err "reg %s: reset value differs" r.Circuit.reg_name
      | None -> err "reg %s: missing reset" r.Circuit.reg_name);
      match List.assoc_opt r.Circuit.reg_name vm.vnexts with
      | Some e when e = r.Circuit.next -> ()
      | Some _ -> err "reg %s: next-state differs" r.Circuit.reg_name
      | None -> err "reg %s: missing next-state" r.Circuit.reg_name)
    c.Circuit.regs;
  (* Memory writes. *)
  let want_writes =
    List.concat_map
      (fun (m : Circuit.memory) ->
        List.map
          (fun (w : Circuit.mem_write) ->
            (w.Circuit.we, m.Circuit.mem_name, w.Circuit.waddr, w.Circuit.wdata))
          m.Circuit.writes)
      c.Circuit.memories
  in
  if sort (List.map Hashtbl.hash vm.vmem_writes)
     <> sort (List.map Hashtbl.hash want_writes)
     || List.length vm.vmem_writes <> List.length want_writes
  then err "memory writes differ";
  (* Memory initialization. *)
  let want_inits =
    List.concat_map
      (fun (m : Circuit.memory) ->
        Array.to_list
          (Array.mapi (fun i w -> (m.Circuit.mem_name, i, w)) m.Circuit.init))
      c.Circuit.memories
  in
  List.iter
    (fun (mem, idx, want) ->
      match
        List.find_opt (fun (m, i, _) -> m = mem && i = idx) vm.vmem_inits
      with
      | Some (_, _, got) when Bits.equal got want -> ()
      | Some _ -> err "memory %s[%d]: init value differs" mem idx
      | None -> err "memory %s[%d]: init missing" mem idx)
    want_inits;
  if List.length vm.vmem_inits <> List.length want_inits then
    err "memory init count: parsed %d, circuit %d"
      (List.length vm.vmem_inits) (List.length want_inits);
  (* Instances. *)
  List.iter
    (fun (i : Circuit.instance) ->
      match
        List.find_opt (fun (_, inst, _) -> inst = i.Circuit.inst_name)
          vm.vinstances
      with
      | None -> err "instance %s missing" i.Circuit.inst_name
      | Some (sub, _, conns) ->
          if sub <> Circuit.name i.Circuit.sub then
            err "instance %s: module %s <> %s" i.Circuit.inst_name sub
              (Circuit.name i.Circuit.sub);
          let want_conns =
            (if Circuit.has_state i.Circuit.sub then
               [ ("clk", Expr.Var "clk"); ("rst", Expr.Var "rst") ]
             else [])
            @ i.Circuit.in_connections
            @ List.map (fun (p, w) -> (p, Expr.Var w)) i.Circuit.out_connections
          in
          if sort (List.map Hashtbl.hash conns)
             <> sort (List.map Hashtbl.hash want_conns)
          then err "instance %s: connections differ" i.Circuit.inst_name)
    c.Circuit.instances;
  if List.length vm.vinstances <> List.length c.Circuit.instances then
    err "instance count differs";
  match List.rev !errs with [] -> Ok () | es -> Error es
