type breakdown = {
  register_bits : int;
  gates_comb : int;
  gates_regs : int;
  memory_bits : int;
}

let gates b = b.gates_comb + b.gates_regs

(* Per-primitive NAND2 costs (classic standard-cell equivalences). *)
let cost_ff = 6
let cost_and_or = 1
let cost_xor = 3
let cost_full_adder = 9
let cost_mux_bit = 3
let cost_eq_bit = 2   (* XNOR into an AND tree *)
let cost_lt_bit = 3

let rec expr_cost ~env (e : Expr.t) =
  let w x = Expr.width ~env x in
  match e with
  | Expr.Const _ | Expr.Var _ -> 0
  | Expr.Select (x, _, _) -> expr_cost ~env x
  | Expr.Concat xs -> List.fold_left (fun a x -> a + expr_cost ~env x) 0 xs
  | Expr.Unop (Expr.Not, x) -> w x / 2 + expr_cost ~env x
  | Expr.Unop ((Expr.Reduce_or | Expr.Reduce_and), x) ->
      (w x - 1) * cost_and_or + expr_cost ~env x
  | Expr.Unop (Expr.Reduce_xor, x) ->
      (w x - 1) * cost_xor + expr_cost ~env x
  | Expr.Binop ((Expr.And | Expr.Or), a, b) ->
      (w a * cost_and_or) + expr_cost ~env a + expr_cost ~env b
  | Expr.Binop (Expr.Xor, a, b) ->
      (w a * cost_xor) + expr_cost ~env a + expr_cost ~env b
  | Expr.Binop ((Expr.Add | Expr.Sub), a, b) ->
      (w a * cost_full_adder) + expr_cost ~env a + expr_cost ~env b
  | Expr.Binop ((Expr.Mul | Expr.Smul), a, b) ->
      (w a * w b * cost_full_adder / 2)
      + expr_cost ~env a + expr_cost ~env b
  | Expr.Binop ((Expr.Eq | Expr.Neq), a, b) ->
      (w a * cost_eq_bit) + expr_cost ~env a + expr_cost ~env b
  | Expr.Binop ((Expr.Ult | Expr.Ule), a, b) ->
      (w a * cost_lt_bit) + expr_cost ~env a + expr_cost ~env b
  | Expr.Mux (c, a, b) ->
      (w a * cost_mux_bit)
      + expr_cost ~env c + expr_cost ~env a + expr_cost ~env b
  | Expr.Shift_left (x, _) | Expr.Shift_right (x, _) ->
      (* Constant shifts are wiring. *)
      expr_cost ~env x

let rec of_circuit ?(include_memories = false) (c : Circuit.t) =
  let env n = Circuit.signal_width c n in
  let comb = ref 0 and reg_bits = ref 0 and mem_bits = ref 0 in
  List.iter
    (fun (a : Circuit.assign) -> comb := !comb + expr_cost ~env a.expr)
    c.assigns;
  List.iter
    (fun (r : Circuit.reg) ->
      reg_bits := !reg_bits + r.reg_width;
      comb := !comb + expr_cost ~env r.next)
    c.regs;
  List.iter
    (fun (m : Circuit.memory) ->
      mem_bits := !mem_bits + (m.data_width * m.depth);
      List.iter
        (fun (w : Circuit.mem_write) ->
          comb :=
            !comb + expr_cost ~env w.we + expr_cost ~env w.waddr
            + expr_cost ~env w.wdata)
        m.writes;
      (* Address decode for each port: roughly one gate per word-select. *)
      List.iter (fun (_, a) -> comb := !comb + expr_cost ~env a) m.reads)
    c.memories;
  let acc =
    List.fold_left
      (fun acc (i : Circuit.instance) ->
        let sub = of_circuit ~include_memories i.sub in
        List.iter (fun (_, e) -> comb := !comb + expr_cost ~env e)
          i.in_connections;
        {
          register_bits = acc.register_bits + sub.register_bits;
          gates_comb = acc.gates_comb + sub.gates_comb;
          gates_regs = acc.gates_regs + sub.gates_regs;
          memory_bits = acc.memory_bits + sub.memory_bits;
        })
      { register_bits = 0; gates_comb = 0; gates_regs = 0; memory_bits = 0 }
      c.instances
  in
  let own_mem_gates = if include_memories then !mem_bits * cost_ff else 0 in
  {
    register_bits = !reg_bits + acc.register_bits;
    gates_comb = !comb + acc.gates_comb;
    gates_regs = (!reg_bits * cost_ff) + own_mem_gates + acc.gates_regs;
    memory_bits = !mem_bits + acc.memory_bits;
  }

let pp_breakdown fmt b =
  Format.fprintf fmt
    "gates=%d (comb=%d, regs=%d) register_bits=%d memory_bits=%d" (gates b)
    b.gates_comb b.gates_regs b.register_bits b.memory_bits

(* A module's own logic: its assigns/regs/memories plus the expression
   cost of the port connections it feeds into its direct instances.
   [of_circuit] charges those connection expressions to the parent, so
   any report that wants [sum of rows = of_circuit total] must count
   them here and not drop them. *)
let own_gates ?include_memories (c : Circuit.t) =
  let env n = Circuit.signal_width c n in
  let conn =
    List.fold_left
      (fun acc (i : Circuit.instance) ->
        List.fold_left
          (fun acc (_, e) -> acc + expr_cost ~env e)
          acc i.in_connections)
      0 c.instances
  in
  gates (of_circuit ?include_memories { c with Circuit.instances = [] })
  + conn

let glue_row = "<top-level glue>"

let by_instance ?include_memories (c : Circuit.t) =
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (i : Circuit.instance) ->
      let sub = of_circuit ?include_memories i.sub in
      let mod_name = Circuit.name i.sub in
      let count, gate_sum =
        match Hashtbl.find_opt totals mod_name with
        | Some (n, g) -> (n, g)
        | None -> (0, 0)
      in
      Hashtbl.replace totals mod_name (count + 1, gate_sum + gates sub))
    c.instances;
  (* The top module's own logic (netlist glue), including the cost of
     the expressions driving instance ports: [of_circuit] counts those
     in the parent, so they belong to this row, not to any instance.
     Without them the rows do not sum to [gates (of_circuit c)]. *)
  let own = own_gates ?include_memories c in
  let rows =
    Hashtbl.fold (fun m (n, g) acc -> (m, n, g) :: acc) totals []
  in
  let rows = if own > 0 then (glue_row, 1, own) :: rows else rows in
  List.sort (fun (_, _, a) (_, _, b) -> compare b a) rows

let by_module ?include_memories (c : Circuit.t) =
  let totals = Hashtbl.create 16 in
  let add name g =
    let count, gate_sum =
      match Hashtbl.find_opt totals name with
      | Some (n, s) -> (n, s)
      | None -> (0, 0)
    in
    Hashtbl.replace totals name (count + 1, gate_sum + g)
  in
  let rec walk (c : Circuit.t) =
    List.iter
      (fun (i : Circuit.instance) ->
        add (Circuit.name i.sub) (own_gates ?include_memories i.sub);
        walk i.sub)
      c.instances
  in
  walk c;
  let own = own_gates ?include_memories c in
  let rows =
    Hashtbl.fold (fun m (n, g) acc -> (m, n, g) :: acc) totals []
  in
  let rows = if own > 0 then (glue_row, 1, own) :: rows else rows in
  List.sort
    (fun (m1, _, a) (m2, _, b) ->
      match compare b a with 0 -> compare m1 m2 | o -> o)
    rows
