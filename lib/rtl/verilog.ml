let range_suffix w = if w = 1 then "" else Printf.sprintf " [%d:0]" (w - 1)

let addr_width depth =
  let rec go w = if 1 lsl w >= depth then w else go (w + 1) in
  max 1 (go 0)

let pp_expr = Expr.pp

let of_circuit (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let stateful = Circuit.has_state c in
  let port_names =
    (if stateful then [ "clk"; "rst" ] else [])
    @ List.map (fun p -> p.Circuit.port_name) c.ports
  in
  pf "module %s (\n  %s\n);\n" c.circ_name (String.concat ",\n  " port_names);
  if stateful then pf "  input clk;\n  input rst;\n";
  List.iter
    (fun (p : Circuit.port) ->
      pf "  %s%s %s;\n"
        (match p.direction with Input -> "input" | Output -> "output")
        (range_suffix p.port_width) p.port_name)
    c.ports;
  if c.wires <> [] then pf "\n";
  List.iter
    (fun (w : Circuit.signal) ->
      pf "  wire%s %s;\n" (range_suffix w.sig_width) w.sig_name)
    c.wires;
  List.iter
    (fun (r : Circuit.reg) ->
      pf "  reg%s %s;\n" (range_suffix r.reg_width) r.reg_name)
    c.regs;
  List.iter
    (fun (m : Circuit.memory) ->
      pf "  reg%s %s [0:%d];\n"
        (range_suffix m.data_width)
        m.mem_name (m.depth - 1);
      (* Asynchronous read ports are continuous assignments into wires
         that must be declared at the memory's width (an undeclared net
         would default to one bit). *)
      List.iter
        (fun (rd, _) -> pf "  wire%s %s;\n" (range_suffix m.data_width) rd)
        m.reads;
      ignore (addr_width m.depth))
    c.memories;
  if c.assigns <> [] || List.exists (fun m -> m.Circuit.reads <> []) c.memories
  then pf "\n";
  List.iter
    (fun (a : Circuit.assign) ->
      pf "  assign %s = %s;\n" a.target (Format.asprintf "%a" pp_expr a.expr))
    c.assigns;
  List.iter
    (fun (m : Circuit.memory) ->
      List.iter
        (fun (rd, aexpr) ->
          pf "  assign %s = %s[%s];\n" rd m.mem_name
            (Format.asprintf "%a" pp_expr aexpr))
        m.reads)
    c.memories;
  if
    c.regs <> []
    || List.exists
         (fun m -> m.Circuit.writes <> [] || m.Circuit.init <> [||])
         c.memories
  then begin
    pf "\n  always @(posedge clk) begin\n";
    pf "    if (rst) begin\n";
    List.iter
      (fun (r : Circuit.reg) ->
        pf "      %s <= %s;\n" r.reg_name (Bits.to_verilog_literal r.init))
      c.regs;
    List.iter
      (fun (m : Circuit.memory) ->
        Array.iteri
          (fun i w ->
            pf "      %s[%d] <= %s;\n" m.mem_name i
              (Bits.to_verilog_literal w))
          m.init)
      c.memories;
    pf "    end else begin\n";
    List.iter
      (fun (r : Circuit.reg) ->
        pf "      %s <= %s;\n" r.reg_name
          (Format.asprintf "%a" pp_expr r.next))
      c.regs;
    List.iter
      (fun (m : Circuit.memory) ->
        List.iter
          (fun (w : Circuit.mem_write) ->
            pf "      if (%s) %s[%s] <= %s;\n"
              (Format.asprintf "%a" pp_expr w.we)
              m.mem_name
              (Format.asprintf "%a" pp_expr w.waddr)
              (Format.asprintf "%a" pp_expr w.wdata))
          m.writes)
      c.memories;
    pf "    end\n  end\n"
  end;
  List.iter
    (fun (i : Circuit.instance) ->
      let conns =
        (if Circuit.has_state i.sub then [ (".clk", "clk"); (".rst", "rst") ]
         else [])
        @ List.map
            (fun (p, e) ->
              ("." ^ p, Format.asprintf "%a" pp_expr e))
            i.in_connections
        @ List.map (fun (p, w) -> ("." ^ p, w)) i.out_connections
      in
      pf "\n  %s %s (\n    %s\n  );\n" i.sub.circ_name i.inst_name
        (String.concat ",\n    "
           (List.map (fun (p, e) -> Printf.sprintf "%s(%s)" p e) conns)))
    c.instances;
  pf "endmodule\n";
  Buffer.contents buf

let header_comment = function
  | [] -> ""
  | lines ->
      String.concat "" (List.map (fun l -> "// " ^ l ^ "\n") lines) ^ "\n"

let of_design ?(header = []) top =
  let subs = Circuit.sub_circuits top in
  header_comment header
  ^ String.concat "\n" (List.map of_circuit (subs @ [ top ]))

let write_design ?(header = []) ~dir top =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let subs = Circuit.sub_circuits top in
  List.map
    (fun c ->
      let path = Filename.concat dir (Circuit.name c ^ ".v") in
      let oc = open_out path in
      output_string oc (header_comment header);
      output_string oc (of_circuit c);
      close_out oc;
      path)
    (subs @ [ top ])
