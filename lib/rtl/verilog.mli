(** Synthesizable Verilog emission.

    Circuits with state get implicit [clk] / [rst] ports (synchronous,
    active-high reset), threaded automatically through the hierarchy. *)

val of_circuit : Circuit.t -> string
(** Verilog source for one module (sub-circuits are referenced, not
    included). *)

val of_design : ?header:string list -> Circuit.t -> string
(** Verilog source for the whole hierarchy: every distinct sub-circuit
    module first (deepest first), then the top module.  [header] lines
    (e.g. tool version and options hash) are emitted as [//] comments
    before the first module.
    @raise Invalid_argument if two different modules share a name. *)

val write_design : ?header:string list -> dir:string -> Circuit.t -> string list
(** Write one [.v] file per module under [dir] (created if needed); returns
    the file paths, top module last.  [header] lines open every file. *)
