(* One handle over the three evaluation engines.

   Downstream subsystems (testbench, property monitors, fault
   campaigns, soak/checkpoint drivers, CLI) talk to this module instead
   of a concrete engine, so `--engine ref|slot|tape` can swap the
   evaluator without touching them.  Dispatch is one variant match per
   operation — negligible against the per-cycle work behind it. *)

type kind = Ref | Slot | Tape

let kind_to_string = function Ref -> "ref" | Slot -> "slot" | Tape -> "tape"

let kind_of_string = function
  | "ref" -> Ok Ref
  | "slot" -> Ok Slot
  | "tape" -> Ok Tape
  | s ->
      Error (Printf.sprintf "unknown engine %S (expected ref, slot or tape)" s)

let all_kinds = [ Ref; Slot; Tape ]

type t =
  | R of Interp_ref.t
  | S of Interp.t
  | T of Interp_tape.t

let default_kind = Tape

let create ?(kind = default_kind) circuit =
  match kind with
  | Ref -> R (Interp_ref.create circuit)
  | Slot -> S (Interp.create circuit)
  | Tape -> T (Interp_tape.create circuit)

let kind = function R _ -> Ref | S _ -> Slot | T _ -> Tape

(* Wrap an existing slot engine (legacy call sites that build an
   {!Interp.t} directly). *)
let of_interp sim = S sim

let reset = function
  | R s -> Interp_ref.reset s
  | S s -> Interp.reset s
  | T s -> Interp_tape.reset s

let set_input t name v =
  match t with
  | R s -> Interp_ref.set_input s name v
  | S s -> Interp.set_input s name v
  | T s -> Interp_tape.set_input s name v

let settle = function
  | R s -> Interp_ref.settle s
  | S s -> Interp.settle s
  | T s -> Interp_tape.settle s

let step = function
  | R s -> Interp_ref.step s
  | S s -> Interp.step s
  | T s -> Interp_tape.step s

let run t n =
  match t with
  | R s -> Interp_ref.run s n
  | S s -> Interp.run s n
  | T s -> Interp_tape.run s n

let peek t name =
  match t with
  | R s -> Interp_ref.peek s name
  | S s -> Interp.peek s name
  | T s -> Interp_tape.peek s name

let peek_int t name =
  match t with
  | R s -> Interp_ref.peek_int s name
  | S s -> Interp.peek_int s name
  | T s -> Interp_tape.peek_int s name

let peek_mem t name addr =
  match t with
  | R s -> Interp_ref.peek_mem s name addr
  | S s -> Interp.peek_mem s name addr
  | T s -> Interp_tape.peek_mem s name addr

let poke_mem t name addr v =
  match t with
  | R s -> Interp_ref.poke_mem s name addr v
  | S s -> Interp.poke_mem s name addr v
  | T s -> Interp_tape.poke_mem s name addr v

let signal_names = function
  | R s -> Interp_ref.signal_names s
  | S s -> Interp.signal_names s
  | T s -> Interp_tape.signal_names s

let memories = function
  | R s -> Interp_ref.memories s
  | S s -> Interp.memories s
  | T s -> Interp_tape.memories s

let on_cycle t f =
  match t with
  | R s -> Interp_ref.on_cycle s f
  | S s -> Interp.on_cycle s f
  | T s -> Interp_tape.on_cycle s f

let clear_observers = function
  | R s -> Interp_ref.clear_observers s
  | S s -> Interp.clear_observers s
  | T s -> Interp_tape.clear_observers s

let reader t name =
  match t with
  | R s -> Interp_ref.reader s name
  | S s -> Interp.reader s name
  | T s -> Interp_tape.reader s name

let inject t injs =
  match t with
  | R s -> Interp_ref.inject s injs
  | S s -> Interp.inject s injs
  | T s -> Interp_tape.inject s injs

let clear_injections = function
  | R s -> Interp_ref.clear_injections s
  | S s -> Interp.clear_injections s
  | T s -> Interp_tape.clear_injections s

let current_cycle = function
  | R s -> Interp_ref.current_cycle s
  | S s -> Interp.current_cycle s
  | T s -> Interp_tape.current_cycle s

let export_state = function
  | R s -> Interp_ref.export_state s
  | S s -> Interp.export_state s
  | T s -> Interp_tape.export_state s

let import_state t st =
  match t with
  | R s -> Interp_ref.import_state s st
  | S s -> Interp.import_state s st
  | T s -> Interp_tape.import_state s st

let random_campaign t ~seed ~n ~horizon =
  match t with
  | R s -> Interp_ref.random_campaign s ~seed ~n ~horizon
  | S s -> Interp.random_campaign s ~seed ~n ~horizon
  | T s -> Interp_tape.random_campaign s ~seed ~n ~horizon
