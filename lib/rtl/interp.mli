(** Cycle-accurate interpreter for {!Circuit} designs.

    The hierarchy is flattened at {!create} time, every flat signal is
    interned into an integer slot of a dense value array, every
    expression is compiled into a closure over slot indices, and the
    combinational network is levelized once ({!Depth.levelize}) — so the
    per-cycle hot path performs no string hashing and no expression-tree
    traversal.  One {!step} = settle combinational logic with the
    current inputs, then take one rising clock edge (latch registers and
    memory writes).

    {!Interp_ref} preserves the original string-keyed engine; the two
    are held bit-equivalent by differential tests. *)

type t

val create : Circuit.t -> t
(** Flatten and schedule the design.
    @raise Invalid_argument on combinational loops (the message lists the
    signals on the cycle). *)

val reset : t -> unit
(** Force every register to its reset value and clear memories to zero;
    re-settle combinational logic. *)

val set_input : t -> string -> Bits.t -> unit
(** @raise Invalid_argument if the name is not a top-level input or the
    width differs. *)

val settle : t -> unit
(** Re-evaluate combinational logic with the current inputs and state. *)

val step : t -> unit
(** [settle] then clock edge. *)

val run : t -> int -> unit
(** [run t n] performs [n] steps. *)

val peek : t -> string -> Bits.t
(** Current value of a top-level port or internal flat signal.  Signals of
    sub-instances use [instname$signal] paths.
    @raise Not_found if unknown. *)

val peek_int : t -> string -> int
(** [Bits.to_int_trunc] of {!peek}. *)

val peek_mem : t -> string -> int -> Bits.t
(** [peek_mem t mem addr]: a word of a (flattened) memory.
    @raise Not_found / [Invalid_argument] on unknown memory / bad address. *)

val poke_mem : t -> string -> int -> Bits.t -> unit
(** Backdoor memory write (test preloading). *)

val signal_names : t -> string list
(** All flat signal names (diagnostics). *)

val memories : t -> (string * int) list
(** All flattened memories as [(flat name, depth)], sorted (diagnostics
    and differential testing). *)

(** {1 Observers}

    Per-cycle hooks for property monitors.  Observers run at the
    sampling point of every {!step} — after combinational settle with
    the cycle's inputs but before the clock edge — so they see exactly
    the values the registers are about to latch, like an assertion
    sampled at the rising edge.  Installed fault injections are already
    folded into the observed values.  With no observers registered the
    evaluation hot path is unchanged. *)

val on_cycle : t -> (int -> unit) -> unit
(** Register an observer; it receives the current cycle number
    (the value {!current_cycle} held when the {!step} began). *)

val clear_observers : t -> unit
(** Remove every registered observer. *)

val reader : t -> string -> (unit -> Bits.t)
(** Pre-resolved accessor for a flat signal: the name is looked up once,
    each call is an array read.  Intended for observers, which must not
    hash strings per cycle.
    @raise Not_found if the signal is unknown. *)

(** {1 Fault injection}

    Deterministic, cycle-scheduled fault injection on named flat
    signals.  Injections perturb the value a signal presents to the rest
    of the design while active: combinational targets are transformed
    after every evaluation, registers at the clock-edge commit, and
    undriven signals (top inputs, floating wires) once per {!step}.
    With no injections installed the evaluation hot path is unchanged. *)

type fault =
  | Stuck_at_0      (** force every bit to 0 while active *)
  | Stuck_at_1      (** force every bit to 1 while active *)
  | Flip of int     (** invert one bit (LSB = 0) while active *)

type injection = {
  inj_signal : string;  (** flat signal name, as in {!signal_names} *)
  inj_fault : fault;
  inj_start : int;      (** first affected cycle, counted by {!step} *)
  inj_cycles : int;     (** duration; [1] models a transient glitch *)
}

val inject : t -> injection list -> unit
(** Install injections (cumulative with previous calls).
    @raise Invalid_argument on an unknown signal, a negative start, a
    non-positive duration, or an out-of-range flip bit. *)

val clear_injections : t -> unit
(** Remove every installed injection and deactivate current faults. *)

val current_cycle : t -> int
(** Number of {!step}s taken since {!create} or {!reset} ({!reset}
    restarts the cycle counter; installed injections are kept and will
    replay relative to the new time base). *)

(** {1 State snapshot}

    Full simulation state as plain data, for checkpoint/restore.  A
    snapshot taken after a {!step} and imported into a freshly
    {!create}d engine of the same circuit resumes bit-exactly: running
    N cycles straight equals snapshot-at-K + import + (N-K) cycles.
    Installed injections are {e not} part of the state — the restoring
    caller re-installs them (they are scheduled on absolute cycles, so
    they re-arm correctly against the restored {!current_cycle}). *)

type state = {
  st_cycle : int;  (** {!current_cycle} at snapshot time *)
  st_values : (string * Bits.t) array;  (** every flat signal's value *)
  st_mems : (string * Bits.t array) array;  (** every memory's words *)
}

val export_state : t -> state
(** Snapshot the current state (deep copies; later steps do not mutate
    the returned value). *)

val import_state : t -> state -> unit
(** Restore a snapshot into an engine created from the same circuit.
    @raise Invalid_argument if a signal or memory is unknown or a
    width/depth disagrees (i.e. the snapshot was taken against a
    different design). *)

val random_campaign :
  t -> seed:int -> n:int -> horizon:int -> injection list
(** [random_campaign t ~seed ~n ~horizon] draws [n] injections over the
    design's signals with start cycles in [0, horizon) and durations of
    1-4 cycles, from a seeded LCG — no global RNG, no wall clock; the
    same arguments always produce the same campaign. *)

(**/**)

(* Internal plumbing shared with {!Interp_tape}: both engines flatten
   through this one function, so the flat-name universe, slot numbering
   (declaration order) and snapshot layout agree by construction. *)

type flat_reg = { fr_name : string; fr_init : Bits.t; fr_next : Expr.t }

type flat_mem = {
  fm_name : string;
  fm_width : int;
  fm_depth : int;
  fm_init : Bits.t array;
  fm_writes : Circuit.mem_write list;
  fm_reads : (string * Expr.t) list;
}

val flatten :
  Circuit.t ->
  (string * int) list
  * (string, int) Hashtbl.t
  * (string * Expr.t) list
  * flat_reg list
  * flat_mem list

val apply_fault : fault -> Bits.t -> Bits.t

(**/**)
