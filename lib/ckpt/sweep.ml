(* Crash-resumable sweep checkpoints: a completed-job bitmap plus the
   accumulated per-job results, in one Ckpt container at
   [<dir>/sweep.bsck], rewritten atomically at a cadence.  A SIGKILLed
   sweep resumes by loading the file and feeding completed jobs back
   through Supervise's [skip] hook; the final report is byte-identical
   to an uninterrupted run because payloads are replayed verbatim in
   job-index order. *)

module Fuzz = Busgen_verify.Fuzz
module Prop = Busgen_verify.Prop
module Interp = Busgen_rtl.Interp

let file_name = "sweep.bsck"
let meta_section = "sweep-meta"
let bitmap_section = "sweep-bitmap"
let done_section = "sweep-done"

type t = {
  sw_path : string;
  sw_tool : string;
  sw_ident : string;
  sw_total : int;
  sw_every : int;
  sw_wall : float;
  sw_log : string -> unit;
  sw_done : (int, string) Hashtbl.t;
  sw_mutex : Mutex.t;
  mutable sw_unsaved : int;
  mutable sw_last_save : float;
}

let ident t = t.sw_ident
let total t = t.sw_total

let bitmap_of_done ~total tbl =
  let b = Bytes.make ((total + 7) / 8) '\000' in
  Hashtbl.iter
    (fun i _ ->
      let byte = i lsr 3 and bit = i land 7 in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl bit))))
    tbl;
  Bytes.to_string b

(* The whole file is deterministic for a given completed set: the done
   list is sorted by job index, so two runs that checkpointed the same
   progress write byte-identical files. *)
let sections t =
  let sorted =
    List.sort
      (fun (a, _) (b, _) -> compare (a : int) b)
      (Hashtbl.fold (fun i p acc -> (i, p) :: acc) t.sw_done [])
  in
  let meta =
    let w = Io.writer () in
    Io.w_string w t.sw_tool;
    Io.w_string w t.sw_ident;
    Io.w_int w t.sw_total;
    Io.contents w
  in
  let bitmap =
    let w = Io.writer () in
    Io.w_string w (bitmap_of_done ~total:t.sw_total t.sw_done);
    Io.contents w
  in
  let done_ =
    let w = Io.writer () in
    Io.w_list w
      (fun w (i, p) ->
        Io.w_int w i;
        Io.w_string w p)
      sorted;
    Io.contents w
  in
  [ (meta_section, meta); (bitmap_section, bitmap); (done_section, done_) ]

let save_locked t =
  Ckpt.write_file ~log:t.sw_log t.sw_path (sections t);
  t.sw_unsaved <- 0;
  t.sw_last_save <- Unix.gettimeofday ()

let save t =
  Mutex.lock t.sw_mutex;
  (match save_locked t with
  | () -> Mutex.unlock t.sw_mutex
  | exception e ->
      Mutex.unlock t.sw_mutex;
      raise e)

let note t i payload =
  if i < 0 || i >= t.sw_total then
    invalid_arg "Sweep.note: job index out of range";
  Mutex.lock t.sw_mutex;
  (match
     if not (Hashtbl.mem t.sw_done i) then begin
       Hashtbl.replace t.sw_done i payload;
       t.sw_unsaved <- t.sw_unsaved + 1;
       if
         t.sw_unsaved >= t.sw_every
         || Unix.gettimeofday () -. t.sw_last_save >= t.sw_wall
       then save_locked t
     end
   with
  | () -> Mutex.unlock t.sw_mutex
  | exception e ->
      Mutex.unlock t.sw_mutex;
      raise e)

let lookup t i =
  Mutex.lock t.sw_mutex;
  let r = Hashtbl.find_opt t.sw_done i in
  Mutex.unlock t.sw_mutex;
  r

let completed t =
  Mutex.lock t.sw_mutex;
  let n = Hashtbl.length t.sw_done in
  Mutex.unlock t.sw_mutex;
  n

let fresh ~path ~tool ~ident ~total ~every ~wall ~log =
  {
    sw_path = path;
    sw_tool = tool;
    sw_ident = ident;
    sw_total = total;
    sw_every = every;
    sw_wall = wall;
    sw_log = log;
    sw_done = Hashtbl.create 64;
    sw_mutex = Mutex.create ();
    sw_unsaved = 0;
    sw_last_save = Unix.gettimeofday ();
  }

exception Stale of string

let decode_into t sects =
  let find name =
    match List.assoc_opt name sects with
    | Some s -> s
    | None -> raise (Io.Corrupt ("missing section " ^ name))
  in
  let r = Io.reader (find meta_section) in
  let tool = Io.r_string r in
  let ident = Io.r_string r in
  let total = Io.r_int r in
  (* Provenance mismatches are refusals, not corruption: the file is a
     valid checkpoint of some other sweep, and silently starting fresh
     would overwrite it. *)
  if tool <> t.sw_tool then
    raise
      (Stale (Printf.sprintf "written by tool %s, this is %s" tool t.sw_tool));
  if ident <> t.sw_ident then
    raise
      (Stale
         (Printf.sprintf "holds sweep %S, this run is %S" ident t.sw_ident));
  if total <> t.sw_total then
    raise
      (Stale (Printf.sprintf "covers %d jobs, this run has %d" total t.sw_total));
  let r = Io.reader (find done_section) in
  let entries =
    Io.r_list r (fun r ->
        let i = Io.r_int r in
        let p = Io.r_string r in
        (i, p))
  in
  List.iter
    (fun (i, p) ->
      if i < 0 || i >= t.sw_total then
        raise (Io.Corrupt (Printf.sprintf "job index %d out of range" i));
      Hashtbl.replace t.sw_done i p)
    entries;
  (* Cross-check the bitmap against the payload list; disagreement
     means a buggy writer, so treat the file as corrupt. *)
  let r = Io.reader (find bitmap_section) in
  let bitmap = Io.r_string r in
  if bitmap <> bitmap_of_done ~total:t.sw_total t.sw_done then
    raise (Io.Corrupt "bitmap disagrees with the completed-job list")

let load ?(log = fun _ -> ()) ?(every = 32) ?(wall = 5.0) ~dir ~ident ~total ()
    =
  if total < 0 then invalid_arg "Sweep.load: negative total";
  if every < 1 then invalid_arg "Sweep.load: every < 1";
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir file_name in
  let tool = Bussyn.Generate.tool_version in
  let t = fresh ~path ~tool ~ident ~total ~every ~wall ~log in
  if not (Sys.file_exists path) then Ok t
  else
    match Ckpt.read_file path with
    | Error reason ->
        (* Torn write, bad block: start over rather than refuse — the
           atomic-rename protocol means this file never held the only
           copy of anything an uninterrupted rerun cannot recompute. *)
        log (Printf.sprintf "sweep: ignoring %s: %s" path reason);
        Hashtbl.reset t.sw_done;
        Ok t
    | Ok sects -> (
        match decode_into t sects with
        | () -> Ok t
        | exception Stale why ->
            Error (Printf.sprintf "%s: %s (move it aside or pick another --sweep-ckpt dir)" path why)
        | exception Io.Corrupt why ->
            log (Printf.sprintf "sweep: ignoring %s: corrupt: %s" path why);
            Hashtbl.reset t.sw_done;
            Ok t)

(* ------------------------------------------------------------------ *)
(* Fuzz result payloads                                                *)
(* ------------------------------------------------------------------ *)

(* Checkpointed fuzz jobs carry their full [Fuzz.result list] so a
   resumed run reproduces the report byte-for-byte without re-running
   the case.  Same Io discipline as the snapshot codecs in ckpt.ml: no
   Marshal, every decode bounds-checked. *)

let w_fault w = function
  | Interp.Stuck_at_0 -> Io.w_int w 0
  | Interp.Stuck_at_1 -> Io.w_int w 1
  | Interp.Flip b ->
      Io.w_int w 2;
      Io.w_int w b

let r_fault r =
  match Io.r_int r with
  | 0 -> Interp.Stuck_at_0
  | 1 -> Interp.Stuck_at_1
  | 2 -> Interp.Flip (Io.r_int r)
  | n -> raise (Io.Corrupt (Printf.sprintf "bad fault tag %d at %d" n (Io.pos r)))

let w_injection w (i : Interp.injection) =
  Io.w_string w i.Interp.inj_signal;
  w_fault w i.Interp.inj_fault;
  Io.w_int w i.Interp.inj_start;
  Io.w_int w i.Interp.inj_cycles

let r_injection r =
  let inj_signal = Io.r_string r in
  let inj_fault = r_fault r in
  let inj_start = Io.r_int r in
  let inj_cycles = Io.r_int r in
  { Interp.inj_signal; inj_fault; inj_start; inj_cycles }

let w_scenario w (sc : Fuzz.scenario) =
  Io.w_string w (Bussyn.Options_text.print sc.Fuzz.sc_options);
  Io.w_int w sc.Fuzz.sc_seed;
  Io.w_int w sc.Fuzz.sc_cycles;
  Io.w_opt w
    (fun w (s, n) ->
      Io.w_int w s;
      Io.w_int w n)
    sc.Fuzz.sc_campaign;
  Io.w_list w w_injection sc.Fuzz.sc_faults

let r_scenario r =
  let options_text = Io.r_string r in
  let sc_options =
    match Bussyn.Options_text.parse options_text with
    | Ok o -> o
    | Error msg -> raise (Io.Corrupt ("scenario options: " ^ msg))
  in
  let sc_seed = Io.r_int r in
  let sc_cycles = Io.r_int r in
  let sc_campaign =
    Io.r_opt r (fun r ->
        let s = Io.r_int r in
        let n = Io.r_int r in
        (s, n))
  in
  let sc_faults = Io.r_list r r_injection in
  { Fuzz.sc_options; sc_seed; sc_cycles; sc_campaign; sc_faults }

let w_violation w (v : Prop.violation) =
  Io.w_string w v.Prop.v_prop;
  Io.w_int w v.Prop.v_cycle;
  Io.w_string w v.Prop.v_detail

let r_violation r =
  let v_prop = Io.r_string r in
  let v_cycle = Io.r_int r in
  let v_detail = Io.r_string r in
  { Prop.v_prop; v_cycle; v_detail }

let w_outcome w = function
  | Fuzz.Clean -> Io.w_int w 0
  | Fuzz.Generation_error s ->
      Io.w_int w 1;
      Io.w_string w s
  | Fuzz.Lint_error s ->
      Io.w_int w 2;
      Io.w_string w s
  | Fuzz.Engine_divergence s ->
      Io.w_int w 3;
      Io.w_string w s
  | Fuzz.Property_violation vs ->
      Io.w_int w 4;
      Io.w_list w w_violation vs
  | Fuzz.Traffic_error s ->
      Io.w_int w 5;
      Io.w_string w s

let r_outcome r =
  match Io.r_int r with
  | 0 -> Fuzz.Clean
  | 1 -> Fuzz.Generation_error (Io.r_string r)
  | 2 -> Fuzz.Lint_error (Io.r_string r)
  | 3 -> Fuzz.Engine_divergence (Io.r_string r)
  | 4 -> Fuzz.Property_violation (Io.r_list r r_violation)
  | 5 -> Fuzz.Traffic_error (Io.r_string r)
  | n ->
      raise (Io.Corrupt (Printf.sprintf "bad outcome tag %d at %d" n (Io.pos r)))

let w_result w (res : Fuzz.result) =
  w_scenario w res.Fuzz.r_scenario;
  w_outcome w res.Fuzz.r_outcome;
  Io.w_opt w Io.w_string res.Fuzz.r_arch;
  Io.w_int w res.Fuzz.r_properties;
  Io.w_list w Io.w_string res.Fuzz.r_detections

let r_result r =
  let r_scenario' = r_scenario r in
  let r_outcome' = r_outcome r in
  let r_arch = Io.r_opt r Io.r_string in
  let r_properties = Io.r_int r in
  let r_detections = Io.r_list r Io.r_string in
  {
    Fuzz.r_scenario = r_scenario';
    r_outcome = r_outcome';
    r_arch;
    r_properties;
    r_detections;
  }

let encode_fuzz_results rs =
  let w = Io.writer () in
  Io.w_list w w_result rs;
  Io.contents w

(* Generic string-list payloads: lets a sweep whose per-job result is
   already a flat record of strings (e.g. explore candidate rows)
   checkpoint without its own Io codec. *)
let encode_strings ss =
  let w = Io.writer () in
  Io.w_list w Io.w_string ss;
  Io.contents w

let decode_strings s =
  match
    let r = Io.reader s in
    let ss = Io.r_list r Io.r_string in
    if not (Io.at_end r) then
      raise (Io.Corrupt (Printf.sprintf "trailing bytes at %d" (Io.pos r)));
    ss
  with
  | ss -> Ok ss
  | exception Io.Corrupt msg -> Error msg

let decode_fuzz_results s =
  match
    let r = Io.reader s in
    let rs = Io.r_list r r_result in
    if not (Io.at_end r) then
      raise (Io.Corrupt (Printf.sprintf "trailing bytes at %d" (Io.pos r)));
    rs
  with
  | rs -> Ok rs
  | exception Io.Corrupt msg -> Error msg
