module A = Bussyn.Archs
module G = Bussyn.Generate
module I = Busgen_rtl.Interp
module E = Busgen_rtl.Engine
module Bits = Busgen_rtl.Bits
module Tb = Busgen_rtl.Testbench
module T = Busgen_verify.Traffic
module P = Busgen_verify.Prop
module Pack = Busgen_verify.Pack

type config = {
  sk_arch : G.arch;
  sk_config : A.config;
  sk_seed : int;
  sk_cycles : int;
  sk_dir : string;
  sk_cadence : int;
  sk_wall : float option;
  sk_keep : int;
  sk_campaign : (int * int) option;
  sk_monitor : bool;
  sk_engine : E.kind;
  sk_log : string -> unit;
}

let config ?(cadence = 10_000) ?(wall = None) ?(keep = 3) ?campaign
    ?(monitor = true) ?(engine = E.default_kind) ?(log = fun _ -> ()) ~arch
    ~config:cfg ~seed ~cycles ~dir () =
  {
    sk_arch = arch;
    sk_config = cfg;
    sk_seed = seed;
    sk_cycles = cycles;
    sk_dir = dir;
    sk_cadence = cadence;
    sk_wall = wall;
    sk_keep = max 1 keep;
    sk_campaign = campaign;
    sk_monitor = monitor;
    sk_engine = engine;
    sk_log = log;
  }

type outcome = {
  so_stats : T.stats;
  so_cycles : int;
  so_violations : P.violation list;
  so_checkpoints : int;
  so_resumed_at : int option;
  so_skipped : (string * string) list;
}

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

(* The watchdog diagnostic: probe a window of cycles and name the
   handshake/arbitration signals that are asserted but frozen — on a
   wedged bus that is the request with no acknowledge, or the grant
   nobody releases.  If nothing asserted is frozen (unusual), fall back
   to counting every frozen control signal. *)
let diagnose sim ~at reason =
  let window = 64 in
  let watch =
    List.filter
      (fun s ->
        contains s "req" || contains s "ack" || contains s "grant"
        || contains s "busy" || contains s "sel")
      (E.signal_names sim)
  in
  let before = List.map (fun s -> (s, E.peek sim s)) watch in
  (try E.run sim window with _ -> ());
  let frozen =
    List.filter (fun (s, v) -> Bits.equal (E.peek sim s) v) before
  in
  let asserted =
    List.filter_map
      (fun (s, v) -> if Bits.is_zero v then None else Some s)
      frozen
  in
  let named = if asserted <> [] then asserted else List.map fst frozen in
  let shown =
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    take 8 named
  in
  Printf.sprintf
    "watchdog: run wedged at cycle %d (%s); %d control signal(s) frozen \
     across a %d-cycle probe%s%s"
    at reason (List.length named) window
    (if shown = [] then "" else ": " ^ String.concat ", " shown)
    (if List.length named > List.length shown then ", ..." else "")

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let ( let* ) = Result.bind

type live = {
  sim : E.t;
  tb : Tb.t;
  traffic : T.t;
  monitor : P.monitor option;
  injections : I.injection list;
}

let run cfg =
  ensure_dir cfg.sk_dir;
  let gen = G.generate cfg.sk_arch cfg.sk_config in
  let top = gen.G.generated.A.top in
  let found, skipped = Ckpt.latest_valid ~dir:cfg.sk_dir ~load:Ckpt.load in
  List.iter
    (fun (path, reason) ->
      (* Load errors usually already name the file; don't say it twice. *)
      let reason =
        let p = path ^ ": " in
        let lp = String.length p in
        if String.length reason >= lp && String.sub reason 0 lp = p then
          String.sub reason lp (String.length reason - lp)
        else reason
      in
      cfg.sk_log (Printf.sprintf "skipping %s: %s" path reason))
    skipped;
  let* live, resumed_at =
    match found with
    | None ->
        (* Fresh run: reset, arm monitors, install the campaign. *)
        let tb = Tb.create ~engine:cfg.sk_engine top in
        let sim = Tb.engine tb in
        let monitor = if cfg.sk_monitor then Some (Pack.attach sim top) else None in
        let injections =
          match cfg.sk_campaign with
          | None -> []
          | Some (seed, n) ->
              E.random_campaign sim ~seed ~n ~horizon:cfg.sk_cycles
        in
        if injections <> [] then E.inject sim injections;
        let traffic =
          T.create tb ~arch:cfg.sk_arch ~config:cfg.sk_config ~seed:cfg.sk_seed
        in
        Ok ({ sim; tb; traffic; monitor; injections }, None)
    | Some (snap, cycle, path) ->
        let* () =
          Ckpt.check_provenance snap ~arch:cfg.sk_arch ~config:cfg.sk_config
            ~seed:cfg.sk_seed
        in
        cfg.sk_log (Printf.sprintf "resuming from %s (cycle %d)" path cycle);
        let sim = E.create ~kind:cfg.sk_engine top in
        let monitor = if cfg.sk_monitor then Some (Pack.attach sim top) else None in
        if snap.Ckpt.ck_injections <> [] then E.inject sim snap.Ckpt.ck_injections;
        (match
           E.import_state sim snap.Ckpt.ck_interp
         with
        | () -> ()
        | exception Invalid_argument msg ->
            failwith ("checkpoint does not fit the regenerated design: " ^ msg));
        let tb = Tb.of_engine sim in
        let traffic =
          T.create tb ~arch:cfg.sk_arch ~config:cfg.sk_config ~seed:cfg.sk_seed
        in
        (match snap.Ckpt.ck_traffic with
        | Some ts -> T.import_state traffic ts
        | None -> ());
        (match (monitor, snap.Ckpt.ck_monitor) with
        | Some m, Some ms -> P.import_state m ms
        | _ -> ());
        Ok
          ( { sim; tb; traffic; monitor; injections = snap.Ckpt.ck_injections },
            Some cycle )
  in
  let written = ref 0 in
  let snapshot_now () =
    {
      Ckpt.ck_tool = G.tool_version;
      ck_hash = G.design_hash cfg.sk_arch cfg.sk_config;
      ck_arch = cfg.sk_arch;
      ck_config = cfg.sk_config;
      ck_seed = cfg.sk_seed;
      ck_interp = E.export_state live.sim;
      ck_injections = live.injections;
      ck_traffic = Some (T.export_state live.traffic);
      ck_monitor = Option.map P.export_state live.monitor;
    }
  in
  let last_ck_cycle = ref (-1) in
  let checkpoint () =
    let cycle = E.current_cycle live.sim in
    if cycle <> !last_ck_cycle then begin
      let path = Ckpt.path_for ~dir:cfg.sk_dir ~cycle in
      Ckpt.save ~log:cfg.sk_log ~path (snapshot_now ());
      incr written;
      last_ck_cycle := cycle;
      Ckpt.prune ~log:cfg.sk_log ~dir:cfg.sk_dir ~keep:cfg.sk_keep ();
      cfg.sk_log (Printf.sprintf "checkpoint %s" path)
    end
  in
  let next_ck =
    (* First cadence boundary strictly ahead of where we start, so a
       resumed run does not immediately rewrite the checkpoint it just
       loaded. *)
    let at = E.current_cycle live.sim in
    ref
      (if cfg.sk_cadence <= 0 then max_int
       else ((at / cfg.sk_cadence) + 1) * cfg.sk_cadence)
  in
  let last_wall = ref (Unix.gettimeofday ()) in
  let result =
    try
      while E.current_cycle live.sim < cfg.sk_cycles do
        T.step live.traffic;
        let now = E.current_cycle live.sim in
        let due_cycles = now >= !next_ck in
        let due_wall =
          match cfg.sk_wall with
          | Some s -> Unix.gettimeofday () -. !last_wall >= s
          | None -> false
        in
        if due_cycles || due_wall then begin
          checkpoint ();
          while !next_ck <= now do
            next_ck := !next_ck + cfg.sk_cadence
          done;
          last_wall := Unix.gettimeofday ()
        end
      done;
      Ok ()
    with Tb.Timeout reason ->
      Error (diagnose live.sim ~at:(E.current_cycle live.sim) reason)
  in
  let* () = result in
  (* A final checkpoint at the end cycle, so a later invocation with a
     larger horizon continues instead of starting over. *)
  if cfg.sk_cadence > 0 then checkpoint ();
  let cycles = E.current_cycle live.sim in
  Ok
    {
      so_stats = T.stats live.traffic ~cycles;
      so_cycles = cycles;
      so_violations =
        (match live.monitor with Some m -> P.violations m | None -> []);
      so_checkpoints = !written;
      so_resumed_at = resumed_at;
      so_skipped = skipped;
    }
