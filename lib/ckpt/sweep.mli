(** Crash-resumable sweep checkpoints.

    A sweep checkpoint is one {!Ckpt} container at [<dir>/sweep.bsck]
    holding a completed-job bitmap and the accumulated per-job result
    payloads (opaque strings), rewritten atomically at a cadence.  A
    SIGKILLed sweep resumes by {!load}ing the directory and feeding
    {!lookup}ed payloads back through
    {!Busgen_par.Supervise.run}'s [skip] hook; because payloads replay
    verbatim in job-index order, the resumed run's final report is
    byte-identical to an uninterrupted one.

    The file is keyed by provenance: tool version, a free-text sweep
    identity (seed / first-case / budget / cycles for fuzz), and the
    total job count.  A file from a {e different} sweep is a refusal
    ([Error] from {!load} — it would be overwritten), while a corrupt
    or torn file degrades gracefully to a fresh start. *)

type t

val load :
  ?log:(string -> unit) ->
  ?every:int ->
  ?wall:float ->
  dir:string ->
  ident:string ->
  total:int ->
  unit ->
  (t, string) result
(** [load ~dir ~ident ~total ()] opens (creating [dir] if needed) the
    sweep checkpoint for the sweep identified by [ident] with [total]
    jobs.  Missing file: fresh, zero jobs completed.  Unreadable or
    corrupt file: one line through [log], then fresh.  Valid file for a
    {b different} sweep (tool / ident / total mismatch): [Error] with a
    one-line reason — never silently clobbered.

    Autosave cadence: {!note} rewrites the file after [every] new
    completions (default 32) or when [wall] seconds (default 5.0) have
    passed since the last save, whichever comes first.
    @raise Sys_error if [dir] cannot be created. *)

val ident : t -> string
val total : t -> int

val completed : t -> int
(** Number of jobs already recorded (the resume head start). *)

val lookup : t -> int -> string option
(** The checkpointed payload of job [i], if completed. *)

val note : t -> int -> string -> unit
(** Record job [i] as completed with its payload; duplicate notes are
    ignored.  May autosave (see {!load}); thread-safe — hooks running
    under the supervisor's lock may call this concurrently with a
    {!save} from the main domain.
    @raise Invalid_argument if [i] is outside [\[0, total)].
    @raise Sys_error if an autosave fails. *)

val save : t -> unit
(** Force a write now (final flush on completion or interrupt).
    @raise Sys_error on I/O failure. *)

(** {1 Fuzz result payloads}

    Codec between {!Busgen_verify.Fuzz.result} lists and the opaque
    payload strings above — same [Io] discipline as the snapshot
    codecs: no [Marshal], every decode bounds-checked.  Round-trips
    exactly: a decoded list feeds {!Busgen_verify.Fuzz.report_to_json}
    byte-identically. *)

val encode_fuzz_results : Busgen_verify.Fuzz.result list -> string

val decode_fuzz_results :
  string -> (Busgen_verify.Fuzz.result list, string) result
(** [Error] on any corruption (bad tag, truncation, unparseable option
    text) — a caller should fall back to re-running the case. *)

(** {1 Generic string-list payloads}

    For sweeps whose per-job result is a flat list of strings (the
    explore candidate rows): same [Io] discipline, exact round-trip,
    [Error] on any corruption. *)

val encode_strings : string list -> string
val decode_strings : string -> (string list, string) result
