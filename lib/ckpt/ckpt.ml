module A = Bussyn.Archs
module G = Bussyn.Generate
module I = Busgen_rtl.Interp
module T = Busgen_verify.Traffic
module P = Busgen_verify.Prop
module Arb = Busgen_modlib.Arbiter
module Cbi = Busgen_modlib.Cbi

let magic = "BSCK"
let format_version = 1

(* ------------------------------------------------------------------ *)
(* Container: magic, version, named sections, CRC-32 trailer           *)
(* ------------------------------------------------------------------ *)

let encode_file sections =
  let b = Io.writer () in
  Io.w_raw b magic;
  Io.w_int b format_version;
  Io.w_list b
    (fun b (name, payload) ->
      Io.w_string b name;
      Io.w_string b payload)
    sections;
  let body = Io.contents b in
  let trailer = Io.writer () in
  Io.w_int trailer (Io.crc32 body);
  body ^ Io.contents trailer

let write_file ?(log = fun _ -> ()) path sections =
  (* Temp file in the same directory (rename must not cross devices),
     then an atomic rename: a crash mid-write leaves at worst a stray
     temp file, never a torn checkpoint under the real name. *)
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc (encode_file sections);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with
     | Sys_error msg ->
         (* The write already failed and [e] carries that story; a
            cleanup failure on top must not replace it, but it must not
            vanish either — a stray temp file in a supervised soak dir
            looks exactly like corruption-in-progress. *)
         log (Printf.sprintf "could not remove temp file %s: %s" tmp msg));
     raise e);
  Sys.rename tmp path

let read_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s =
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          really_input_string ic len)
    in
    s
  with
  | exception Sys_error msg -> Error msg
  | s -> (
      let fail reason = Error (Printf.sprintf "%s: %s" path reason) in
      let n = String.length s in
      if n < String.length magic + 16 then fail "not a checkpoint (too short)"
      else if String.sub s 0 (String.length magic) <> magic then
        fail "not a checkpoint (bad magic)"
      else begin
        let body = String.sub s 0 (n - 8) in
        (* Compare the trailer bytes, not a decoded integer: damage to
           the trailer itself must read as a CRC mismatch, not a decode
           error. *)
        let expect =
          let b = Io.writer () in
          Io.w_int b (Io.crc32 body);
          Io.contents b
        in
        if String.sub s (n - 8) 8 <> expect then
          fail "corrupt checkpoint (CRC mismatch)"
        else
          let r =
            Io.reader
              (String.sub body (String.length magic)
                 (String.length body - String.length magic))
          in
          match
            let version = Io.r_int r in
            if version <> format_version then
              Error
                (Printf.sprintf "%s: unsupported checkpoint version %d (tool reads %d)"
                   path version format_version)
            else begin
              let sections =
                Io.r_list r (fun r ->
                    let name = Io.r_string r in
                    (name, Io.r_string r))
              in
              if not (Io.at_end r) then
                Error (path ^ ": corrupt checkpoint (trailing bytes)")
              else Ok sections
            end
          with
          | result -> result
          | exception Io.Corrupt what ->
              fail ("corrupt checkpoint (" ^ what ^ ")")
      end)

let section sections name =
  match List.assoc_opt name sections with
  | Some payload -> Ok payload
  | None -> Error (Printf.sprintf "missing section %S" name)

(* ------------------------------------------------------------------ *)
(* Field codecs                                                        *)
(* ------------------------------------------------------------------ *)

let arch_tag = function
  | G.Bfba -> 0 | G.Gbavi -> 1 | G.Gbavii -> 2 | G.Gbaviii -> 3
  | G.Hybrid -> 4 | G.Splitba -> 5 | G.Ggba -> 6 | G.Ccba -> 7

let bad_tag r what n =
  raise
    (Io.Corrupt (Printf.sprintf "unknown %s tag %d at byte %d" what n (Io.pos r)))

let arch_of_tag r = function
  | 0 -> G.Bfba | 1 -> G.Gbavi | 2 -> G.Gbavii | 3 -> G.Gbaviii
  | 4 -> G.Hybrid | 5 -> G.Splitba | 6 -> G.Ggba | 7 -> G.Ccba
  | n -> bad_tag r "architecture" n

let w_config b (c : A.config) =
  Io.w_int b c.A.n_pes;
  Io.w_int b c.A.bus_addr_width;
  Io.w_int b c.A.bus_data_width;
  Io.w_int b c.A.mem_addr_width;
  Io.w_int b c.A.global_mem_addr_width;
  Io.w_int b c.A.fifo_depth;
  Io.w_int b
    (match c.A.arb_policy with
    | Arb.Priority -> 0 | Arb.Round_robin -> 1 | Arb.Fcfs -> 2);
  Io.w_int b
    (match c.A.cpu with
    | Cbi.Mpc750 -> 0 | Cbi.Mpc755 -> 1 | Cbi.Mpc7410 -> 2 | Cbi.Arm9tdmi -> 3);
  Io.w_int b
    (match c.A.accelerator with
    | A.Acc_none -> 0 | A.Acc_dct -> 1 | A.Acc_fft -> 2);
  Io.w_int b
    (match c.A.mem_kind with A.Mk_sram -> 0 | A.Mk_dram -> 1 | A.Mk_dpram -> 2);
  Io.w_int b c.A.n_subsystems;
  Io.w_bool b c.A.protect

let r_config r : A.config =
  let n_pes = Io.r_int r in
  let bus_addr_width = Io.r_int r in
  let bus_data_width = Io.r_int r in
  let mem_addr_width = Io.r_int r in
  let global_mem_addr_width = Io.r_int r in
  let fifo_depth = Io.r_int r in
  let arb_policy =
    match Io.r_int r with
    | 0 -> Arb.Priority | 1 -> Arb.Round_robin | 2 -> Arb.Fcfs
    | n -> bad_tag r "arbiter policy" n
  in
  let cpu =
    match Io.r_int r with
    | 0 -> Cbi.Mpc750 | 1 -> Cbi.Mpc755 | 2 -> Cbi.Mpc7410 | 3 -> Cbi.Arm9tdmi
    | n -> bad_tag r "cpu" n
  in
  let accelerator =
    match Io.r_int r with
    | 0 -> A.Acc_none | 1 -> A.Acc_dct | 2 -> A.Acc_fft
    | n -> bad_tag r "accelerator" n
  in
  let mem_kind =
    match Io.r_int r with
    | 0 -> A.Mk_sram | 1 -> A.Mk_dram | 2 -> A.Mk_dpram
    | n -> bad_tag r "memory kind" n
  in
  let n_subsystems = Io.r_int r in
  let protect = Io.r_bool r in
  {
    A.n_pes; bus_addr_width; bus_data_width; mem_addr_width;
    global_mem_addr_width; fifo_depth; arb_policy; cpu; accelerator;
    mem_kind; n_subsystems; protect;
  }

let w_injection b (inj : I.injection) =
  Io.w_string b inj.I.inj_signal;
  (match inj.I.inj_fault with
  | I.Stuck_at_0 -> Io.w_int b 0
  | I.Stuck_at_1 -> Io.w_int b 1
  | I.Flip bit ->
      Io.w_int b 2;
      Io.w_int b bit);
  Io.w_int b inj.I.inj_start;
  Io.w_int b inj.I.inj_cycles

let r_injection r : I.injection =
  let inj_signal = Io.r_string r in
  let inj_fault =
    match Io.r_int r with
    | 0 -> I.Stuck_at_0
    | 1 -> I.Stuck_at_1
    | 2 -> I.Flip (Io.r_int r)
    | n -> bad_tag r "fault" n
  in
  let inj_start = Io.r_int r in
  let inj_cycles = Io.r_int r in
  { I.inj_signal; inj_fault; inj_start; inj_cycles }

let w_interp_state b (st : I.state) =
  Io.w_int b st.I.st_cycle;
  Io.w_array b
    (fun b (name, v) ->
      Io.w_string b name;
      Io.w_bits b v)
    st.I.st_values;
  Io.w_array b
    (fun b (name, words) ->
      Io.w_string b name;
      Io.w_array b Io.w_bits words)
    st.I.st_mems

let r_interp_state r : I.state =
  let st_cycle = Io.r_int r in
  let st_values =
    Io.r_array r (fun r ->
        let name = Io.r_string r in
        (name, Io.r_bits r))
  in
  let st_mems =
    Io.r_array r (fun r ->
        let name = Io.r_string r in
        (name, Io.r_array r Io.r_bits))
  in
  { I.st_cycle; st_values; st_mems }

let w_pair b (x, y) =
  Io.w_int b x;
  Io.w_int b y

let r_pair r =
  let x = Io.r_int r in
  let y = Io.r_int r in
  (x, y)

let w_traffic_state b (st : T.state) =
  Io.w_int b st.T.ts_rng;
  Io.w_list b
    (fun b (pe, off, v) ->
      Io.w_int b pe;
      Io.w_int b off;
      Io.w_int b v)
    st.T.ts_local;
  Io.w_list b w_pair st.T.ts_shared;
  Io.w_list b w_pair st.T.ts_hs;
  Io.w_list b (fun b q -> Io.w_list b Io.w_int q) st.T.ts_queues;
  Io.w_int b st.T.ts_transactions;
  Io.w_int b st.T.ts_reads;
  Io.w_int b st.T.ts_writes;
  Io.w_int b st.T.ts_mismatches

let r_traffic_state r : T.state =
  let ts_rng = Io.r_int r in
  let ts_local =
    Io.r_list r (fun r ->
        let pe = Io.r_int r in
        let off = Io.r_int r in
        let v = Io.r_int r in
        (pe, off, v))
  in
  let ts_shared = Io.r_list r r_pair in
  let ts_hs = Io.r_list r r_pair in
  let ts_queues = Io.r_list r (fun r -> Io.r_list r Io.r_int) in
  let ts_transactions = Io.r_int r in
  let ts_reads = Io.r_int r in
  let ts_writes = Io.r_int r in
  let ts_mismatches = Io.r_int r in
  {
    T.ts_rng; ts_local; ts_shared; ts_hs; ts_queues; ts_transactions;
    ts_reads; ts_writes; ts_mismatches;
  }

let w_monitor_state b (st : P.monitor_state) =
  Io.w_array b Io.w_int st.P.ms_pending;
  Io.w_list b
    (fun b (v : P.violation) ->
      Io.w_string b v.P.v_prop;
      Io.w_int b v.P.v_cycle;
      Io.w_string b v.P.v_detail)
    st.P.ms_firsts;
  Io.w_int b st.P.ms_total

let r_monitor_state r : P.monitor_state =
  let ms_pending = Io.r_array r Io.r_int in
  let ms_firsts =
    Io.r_list r (fun r ->
        let v_prop = Io.r_string r in
        let v_cycle = Io.r_int r in
        let v_detail = Io.r_string r in
        { P.v_prop; v_cycle; v_detail })
  in
  let ms_total = Io.r_int r in
  { P.ms_pending; ms_firsts; ms_total }

(* ------------------------------------------------------------------ *)
(* RTL co-simulation snapshots                                         *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  ck_tool : string;
  ck_hash : string;
  ck_arch : G.arch;
  ck_config : A.config;
  ck_seed : int;
  ck_interp : I.state;
  ck_injections : I.injection list;
  ck_traffic : T.state option;
  ck_monitor : P.monitor_state option;
}

let payload f v =
  let b = Io.writer () in
  f b v;
  Io.contents b

let save ?log ~path snap =
  let meta b () =
    Io.w_string b snap.ck_tool;
    Io.w_string b snap.ck_hash;
    Io.w_int b (arch_tag snap.ck_arch);
    w_config b snap.ck_config;
    Io.w_int b snap.ck_seed
  in
  write_file ?log path
    [
      ("meta", payload meta ());
      ("interp", payload w_interp_state snap.ck_interp);
      ("faults", payload (fun b -> Io.w_list b w_injection) snap.ck_injections);
      ("traffic", payload (fun b -> Io.w_opt b w_traffic_state) snap.ck_traffic);
      ("monitor", payload (fun b -> Io.w_opt b w_monitor_state) snap.ck_monitor);
    ]

let decoding path f =
  match f () with
  | v -> Ok v
  | exception Io.Corrupt what ->
      Error (Printf.sprintf "%s: corrupt checkpoint (%s)" path what)

let ( let* ) = Result.bind

let load ~path =
  let* sections = read_file path in
  let get name =
    Result.map_error (fun e -> path ^ ": " ^ e) (section sections name)
  in
  let* meta = get "meta" in
  let* interp = get "interp" in
  let* faults = get "faults" in
  let* traffic = get "traffic" in
  let* monitor = get "monitor" in
  decoding path (fun () ->
      let r = Io.reader meta in
      let ck_tool = Io.r_string r in
      let ck_hash = Io.r_string r in
      let ck_arch = arch_of_tag r (Io.r_int r) in
      let ck_config = r_config r in
      let ck_seed = Io.r_int r in
      let ck_interp = r_interp_state (Io.reader interp) in
      let ck_injections = Io.r_list (Io.reader faults) r_injection in
      let ck_traffic = Io.r_opt (Io.reader traffic) r_traffic_state in
      let ck_monitor = Io.r_opt (Io.reader monitor) r_monitor_state in
      {
        ck_tool; ck_hash; ck_arch; ck_config; ck_seed; ck_interp;
        ck_injections; ck_traffic; ck_monitor;
      })

let check_provenance snap ~arch ~config ~seed =
  let want_hash = G.design_hash arch config in
  if snap.ck_tool <> G.tool_version then
    Error
      (Printf.sprintf
         "checkpoint written by %s; this is %s — refusing to resume"
         snap.ck_tool G.tool_version)
  else if snap.ck_hash <> want_hash then
    Error
      (Printf.sprintf
         "checkpoint design hash %s does not match regenerated design %s \
          (%s) — the design changed; refusing to resume"
         snap.ck_hash want_hash (G.arch_name arch))
  else if snap.ck_seed <> seed then
    Error
      (Printf.sprintf
         "checkpoint traffic seed %d does not match requested seed %d — \
          refusing to resume"
         snap.ck_seed seed)
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Transaction-level replay marks                                      *)
(* ------------------------------------------------------------------ *)

type mark = {
  mk_tool : string;
  mk_ident : string;
  mk_cycle : int;
  mk_digest : int;
}

let save_mark ~path mark =
  let body b () =
    Io.w_string b mark.mk_tool;
    Io.w_string b mark.mk_ident;
    Io.w_int b mark.mk_cycle;
    Io.w_int b mark.mk_digest
  in
  write_file path [ ("mark", payload body ()) ]

let load_mark ~path =
  let* sections = read_file path in
  let* body = Result.map_error (fun e -> path ^ ": " ^ e) (section sections "mark") in
  decoding path (fun () ->
      let r = Io.reader body in
      let mk_tool = Io.r_string r in
      let mk_ident = Io.r_string r in
      let mk_cycle = Io.r_int r in
      let mk_digest = Io.r_int r in
      { mk_tool; mk_ident; mk_cycle; mk_digest })

(* ------------------------------------------------------------------ *)
(* Checkpoint directories                                              *)
(* ------------------------------------------------------------------ *)

let path_for ~dir ~cycle =
  Filename.concat dir (Printf.sprintf "ckpt-%012d.bsck" cycle)

let cycle_of_filename name =
  if
    String.length name > 11
    && String.sub name 0 5 = "ckpt-"
    && Filename.check_suffix name ".bsck"
  then
    int_of_string_opt (String.sub name 5 (String.length name - 10))
  else None

let list_files ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun name ->
             match cycle_of_filename name with
             | Some cycle -> Some (cycle, Filename.concat dir name)
             | None -> None)
      |> List.sort (fun (a, _) (b, _) -> compare b a)

let latest_valid ~dir ~load =
  let rec go skipped = function
    | [] -> (None, List.rev skipped)
    | (cycle, path) :: rest -> (
        match load ~path with
        | Ok v -> (Some (v, cycle, path), List.rev skipped)
        | Error reason -> go ((path, reason) :: skipped) rest)
  in
  go [] (list_files ~dir)

let prune ?(log = fun _ -> ()) ~dir ~keep () =
  list_files ~dir
  |> List.iteri (fun i (_, path) ->
         if i >= keep then
           try Sys.remove path
           with Sys_error msg ->
             (* Swallowing this silently made a half-pruned directory
                (e.g. a permission flip mid-soak, or an alien entry
                matching the checkpoint name pattern) indistinguishable
                from corruption.  Pruning stays best-effort — recovery
                only needs [latest_valid] — but the skip is reported
                through the caller's reason channel. *)
             log (Printf.sprintf "prune: skipping %s: %s" path msg))
