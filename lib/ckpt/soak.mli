(** Supervised long co-simulations with crash recovery.

    A soak run drives the generated RTL with the deterministic traffic
    driver ({!Busgen_verify.Traffic}) under the standard property pack,
    writing a {!Ckpt.snapshot} on a cycle (and optionally wall-clock)
    cadence and keeping the newest few.  Restarting the same run
    against the same checkpoint directory resumes from the newest
    checkpoint that validates — a corrupt newest file (torn write, bad
    block) is skipped with a note and the previous good one is used —
    and, because every layer of state is snapshotted, the resumed run
    is bit-exact with the uninterrupted one.

    A heartbeat watchdog guards against wedged runs: a transaction that
    stops making progress (the bus never acknowledges within the
    testbench timeout) trips it, and the run terminates with a
    diagnostic naming the control signals frozen across a probe window
    instead of spinning forever. *)

type config = {
  sk_arch : Bussyn.Generate.arch;
  sk_config : Bussyn.Archs.config;
  sk_seed : int;              (** traffic seed *)
  sk_cycles : int;            (** run until at least this many cycles *)
  sk_dir : string;            (** checkpoint directory (created if needed) *)
  sk_cadence : int;           (** checkpoint every N cycles; [<= 0] disables *)
  sk_wall : float option;     (** also checkpoint every this many seconds *)
  sk_keep : int;              (** checkpoint files retained (newest first) *)
  sk_campaign : (int * int) option;
      (** [(seed, n)]: install a random fault campaign over the design
          (see {!Busgen_rtl.Interp.random_campaign}) *)
  sk_monitor : bool;          (** arm the standard property pack *)
  sk_engine : Busgen_rtl.Engine.kind;  (** evaluation engine *)
  sk_log : string -> unit;    (** progress lines (checkpoints, resume, skips) *)
}

val config :
  ?cadence:int -> ?wall:float option -> ?keep:int ->
  ?campaign:int * int -> ?monitor:bool ->
  ?engine:Busgen_rtl.Engine.kind -> ?log:(string -> unit) ->
  arch:Bussyn.Generate.arch -> config:Bussyn.Archs.config -> seed:int ->
  cycles:int -> dir:string -> unit -> config
(** Defaults: cadence 10_000 cycles, no wall-clock cadence, keep 3,
    no campaign, monitors on, engine {!Busgen_rtl.Engine.default_kind},
    silent log.  Checkpoints interchange across engines: a run
    checkpointed under one engine resumes under any other. *)

type outcome = {
  so_stats : Busgen_verify.Traffic.stats;
      (** cumulative over the whole logical run, resumes included *)
  so_cycles : int;            (** absolute cycle count reached *)
  so_violations : Busgen_verify.Prop.violation list;
  so_checkpoints : int;       (** checkpoint files written by this process *)
  so_resumed_at : int option; (** cycle of the checkpoint resumed from *)
  so_skipped : (string * string) list;
      (** corrupt/unreadable checkpoints skipped during recovery *)
}

val run : config -> (outcome, string) result
(** Run (or resume) to [sk_cycles].  [Error] cases: a checkpoint whose
    provenance (tool version, design hash, traffic seed) does not match
    — see {!Ckpt.check_provenance} — or a tripped watchdog, whose
    message names the frozen control signals. *)
