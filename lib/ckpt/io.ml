module Bits = Busgen_rtl.Bits

(* The codec core (LE ints, length-prefixed strings, bounds-checked
   reads, CRC-32) lives in [Busgen_binio.Io] so that [Busgen_par] can
   speak the same wire format without a dependency cycle; this module
   re-exports it and adds the [Bits] codecs, which need the RTL
   library. *)
include Busgen_binio.Io

let w_bits b v =
  w_int b (Bits.width v);
  w_string b (Bits.to_hex_string v)

let r_bits r =
  let w = r_int r in
  let hex = r_string r in
  if w < 1 then corrupt r "malformed bit width";
  match Bits.of_string (Printf.sprintf "%d'h%s" w hex) with
  | v -> v
  | exception Invalid_argument _ -> corrupt r "malformed bit vector"
