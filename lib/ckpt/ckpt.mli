(** Crash-safe checkpoint files for long co-simulations.

    A checkpoint is a versioned binary container — magic ["BSCK"],
    format version, named sections, CRC-32 trailer over everything
    before it — written atomically (temp file in the same directory,
    then [rename]), so a run killed mid-write can never leave a
    half-written file under a checkpoint name.  Loading validates the
    magic, version and CRC before decoding anything; every failure is a
    clean [Error] naming the file and the reason.

    On top of the container sit two typed snapshots:

    - {!snapshot}: full RTL co-simulation state — interpreter signal
      and memory values ({!Busgen_rtl.Interp.state}), installed fault
      injections, the traffic driver's RNG and shadow model
      ({!Busgen_verify.Traffic.state}), property-monitor obligations
      ({!Busgen_verify.Prop.monitor_state}) — plus the provenance
      needed to refuse a mismatched resume: tool version and
      {!Bussyn.Generate.design_hash} over the architecture and config
      (both of which are stored too, so a resume can re-generate the
      exact circuit).

    - {!mark}: a replay mark for the transaction-level engine
      ({!Busgen_sim}), whose per-PE phases carry closures and cannot be
      serialized.  A mark records the cycle reached and the engine's
      state digest; restore is deterministic replay to that cycle,
      validated against the digest. *)

(** {1 Container} *)

val format_version : int

val write_file : ?log:(string -> unit) -> string -> (string * string) list -> unit
(** [write_file path sections] encodes and atomically replaces [path].
    [log] (default: drop) receives a one-line report if cleaning up the
    temp file after a failed write itself fails — the original failure
    is still raised.
    @raise Sys_error on I/O failure. *)

val read_file : string -> ((string * string) list, string) result
(** Validate magic, version and CRC, then return the sections.  Never
    raises on file content; the [Error] is one line. *)

(** {1 RTL co-simulation snapshots} *)

type snapshot = {
  ck_tool : string;           (** {!Bussyn.Generate.tool_version} of the writer *)
  ck_hash : string;           (** {!Bussyn.Generate.design_hash} of the design *)
  ck_arch : Bussyn.Generate.arch;
  ck_config : Bussyn.Archs.config;
  ck_seed : int;              (** traffic seed of the run *)
  ck_interp : Busgen_rtl.Interp.state;
  ck_injections : Busgen_rtl.Interp.injection list;
  ck_traffic : Busgen_verify.Traffic.state option;
  ck_monitor : Busgen_verify.Prop.monitor_state option;
}

val save : ?log:(string -> unit) -> path:string -> snapshot -> unit
(** Atomic write (see above); [log] as in {!write_file}. *)

val load : path:string -> (snapshot, string) result

val check_provenance :
  snapshot -> arch:Bussyn.Generate.arch -> config:Bussyn.Archs.config ->
  seed:int -> (unit, string) result
(** Refuse a resume against a different world: the snapshot's tool
    version, design hash and traffic seed must all match what the
    resuming run would use.  The [Error] says which differs and how. *)

(** {1 Transaction-level replay marks} *)

type mark = {
  mk_tool : string;
  mk_ident : string;  (** free-text workload identity (arch, app, faults) *)
  mk_cycle : int;
  mk_digest : int;    (** {!Busgen_sim.Machine.progress} digest at [mk_cycle] *)
}

val save_mark : path:string -> mark -> unit
val load_mark : path:string -> (mark, string) result

(** {1 Checkpoint directories}

    Checkpoints live in a directory as [ckpt-<cycle>.bsck], one file
    per checkpointed cycle, newest-first recovery with graceful
    degradation: a corrupt newest file (torn disk, bad block) is
    skipped and the previous good one is used. *)

val path_for : dir:string -> cycle:int -> string

val list_files : dir:string -> (int * string) list
(** Checkpoint files present, newest (highest cycle) first.  A missing
    directory is an empty list. *)

val latest_valid :
  dir:string -> load:(path:string -> ('a, string) result) ->
  ('a * int * string) option * (string * string) list
(** Try [load] on each file, newest first; return the first success (with
    its cycle and path) and every [(path, reason)] skipped on the way.
    [(None, skipped)] when nothing loads. *)

val prune : ?log:(string -> unit) -> dir:string -> keep:int -> unit -> unit
(** Delete all but the newest [keep] checkpoint files.  Removal is
    best-effort — resume correctness rests on {!latest_valid}, not on a
    clean directory — but a file that cannot be removed is reported as
    a one-line [prune: skipping <path>: <reason>] through [log]
    (default: drop) instead of being silently left behind, so a
    supervised soak can tell a half-pruned directory from corruption. *)
