let mpc755_ban = Options.default_mpc755_ban Options.paper_sram_8mb

let bus bus_type ?bififo_depth () =
  {
    Options.bus = bus_type;
    bus_addr_width = 32;
    bus_data_width = 64;
    bififo_depth;
  }

let single_subsystem ~buses ~n_pes =
  {
    Options.subsystems =
      [ { Options.buses; bans = List.init n_pes (fun _ -> mpc755_ban) } ];
    protection = false;
  }

let bfba_n n =
  single_subsystem ~buses:[ bus Options.Bfba ~bififo_depth:1024 () ] ~n_pes:n

let gbavi_n n = single_subsystem ~buses:[ bus Options.Gbavi () ] ~n_pes:n

let gbaviii_n n = single_subsystem ~buses:[ bus Options.Gbaviii () ] ~n_pes:n

let gbavii_n n =
  single_subsystem
    ~buses:[ bus Options.Gbavi (); bus Options.Gbaviii () ]
    ~n_pes:n

let hybrid_n n =
  single_subsystem
    ~buses:[ bus Options.Bfba ~bififo_depth:1024 (); bus Options.Gbaviii () ]
    ~n_pes:n

let splitba_n n =
  let half = n / 2 in
  {
    Options.subsystems =
      [
        {
          Options.buses = [ bus Options.Splitba () ];
          bans = List.init half (fun _ -> mpc755_ban);
        };
        {
          Options.buses = [ bus Options.Splitba () ];
          bans = List.init (n - half) (fun _ -> mpc755_ban);
        };
      ];
    protection = false;
  }

let bfba_4pe = bfba_n 4
let gbavi_4pe = gbavi_n 4
let gbaviii_4pe = gbaviii_n 4
let hybrid_4pe = hybrid_n 4
let splitba_4pe = splitba_n 4

let all =
  [
    ("BFBA", bfba_4pe);
    ("GBAVI", gbavi_4pe);
    ("GBAVIII", gbaviii_4pe);
    ("Hybrid", hybrid_4pe);
    ("SplitBA", splitba_4pe);
  ]

let scaled ~arch ~n_pes =
  if n_pes < 1 then None
  else
    match arch with
    | Generate.Bfba -> Some (bfba_n n_pes)
    | Generate.Gbavi -> Some (gbavi_n n_pes)
    | Generate.Gbavii -> Some (gbavii_n n_pes)
    | Generate.Gbaviii -> Some (gbaviii_n n_pes)
    | Generate.Hybrid -> Some (hybrid_n n_pes)
    | Generate.Splitba ->
        if n_pes >= 2 && n_pes mod 2 = 0 then Some (splitba_n n_pes) else None
    | Generate.Ggba | Generate.Ccba -> None
