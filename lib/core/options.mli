(** User input options (paper Fig. 18, right-hand box).

    The option tree mirrors the paper's five categories:
    1. Bus System Property — number of Bus Subsystems;
    2. Bus Subsystem Property — number of BANs, number of buses, bus types;
    3. Bus Property — address/data widths, Bi-FIFO depth (BFBA only);
    4. BAN Property — CPU type or non-CPU type, number of memories;
    5. Memory Property — type, address width, data width. *)

type bus_type = Gbavi | Gbaviii | Bfba | Splitba

type cpu_type = Cpu_mpc750 | Cpu_mpc755 | Cpu_mpc7410 | Cpu_arm9tdmi

type non_cpu_type = Dct | Fft | Mpeg2_decoder

type memory_type = Mem_sram | Mem_dram | Mem_dpram | Mem_fifo

type memory_prop = {
  mem_type : memory_type;
  mem_addr_width : int;  (** user option 5.2 *)
  mem_data_width : int;  (** user option 5.3 *)
}

type ban_prop = {
  cpu : cpu_type option;          (** user option 4.1 (NONE allowed) *)
  non_cpu : non_cpu_type option;  (** user option 4.2 *)
  memories : memory_prop list;    (** options 4.3 + 5.x *)
}

type bus_prop = {
  bus : bus_type;                 (** user option 2.3 *)
  bus_addr_width : int;           (** user option 3.1 *)
  bus_data_width : int;           (** user option 3.2 *)
  bififo_depth : int option;      (** user option 3.3; BFBA/Hybrid only *)
}

type subsystem_prop = {
  buses : bus_prop list;          (** options 2.2/2.3: one or two buses *)
  bans : ban_prop list;           (** option 2.1 gives the length *)
}

type t = {
  subsystems : subsystem_prop list;
  protection : bool;
      (** generate bus error-protection hardware per subsystem: a
          watchdog on each bus's request/acknowledge pair plus an even
          parity generator/checker across the write-data lines *)
}

val validate : t -> (unit, string list) result
(** All structural constraints of the input sequence: at least one
    subsystem, each with at least one BAN and between one and two buses;
    Bi-FIFO depth present exactly for BFBA buses (and >= 2); a BAN has a
    CPU or a non-CPU function or is a pure memory BAN, not both CPU and
    non-CPU; memory widths within the bus widths; supported width
    ranges. *)

val bus_type_name : bus_type -> string
val cpu_type_name : cpu_type -> string
val memory_type_name : memory_type -> string

val cpu_to_modlib : cpu_type -> Busgen_modlib.Cbi.pe

val default_mpc755_ban : memory_prop -> ban_prop
(** An MPC755 BAN with one memory — the configuration used throughout the
    paper's examples. *)

val paper_sram_8mb : memory_prop
(** The paper's 8 MB SRAM: [addr_width = 20], [data_width = 64]
    (Example 9). *)

val pp : Format.formatter -> t -> unit
(** Render the option tree in the numbered style of Fig. 18. *)

val sample : seed:int -> t
(** Deterministic pseudo-random option tree for fuzzing: a seeded LCG
    (no global RNG, no wall clock) picks one of the supported
    architecture shapes with randomized widths, depths, PE counts and
    the protection flag.  Roughly one tree in six is deliberately
    invalid (missing buses, misplaced Bi-FIFO depth, over-wide
    memories, unsupported bus pairs) so option-validation and
    generation-error paths stay covered.  The same seed always returns
    the same tree. *)
