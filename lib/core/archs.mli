(** Architecture generators: the five BusSyn bus systems of paper
    Section IV.B (Figs. 3-7) plus the two hand-designed baselines
    (Figs. 8-9).

    Each generator assembles Module Library circuits into BANs, BANs into
    Bus Subsystems and Bus Subsystems into a Bus System, entirely through
    {!Netlist.build} over programmatically constructed Wire Library
    entries — the same match-and-instantiate path as the paper's BANGen /
    SubSysGen pseudo code.

    The generated top-level circuit exposes, per PE index [k]:
    - [cpu<k>_req], [cpu<k>_rnw], [cpu<k>_addr], [cpu<k>_wdata] (inputs)
      and [cpu<k>_rdata], [cpu<k>_ack] (outputs) — the PE socket where the
      IP processor core (or a testbench) attaches;
    - [cpu<k>_irq] (output) on architectures with Bi-FIFO interrupts
      (BFBA, Hybrid). *)

type accelerator = Acc_none | Acc_dct | Acc_fft
(** Non-CPU BAN function (user option 4.2).  [Acc_dct] hangs the DCT
    engine off the global bus (any architecture with a global path);
    [Acc_fft] attaches Example 8's FFT BAN over dedicated wires and is
    only valid for {!bfba} — every other builder rejects it. *)

type mem_kind = Mk_sram | Mk_dram | Mk_dpram
(** Local-memory template (user option 5.1).  [Mk_dram] pairs the
    behavioural array with a 3-cycle MBI; [Mk_dpram] instantiates the
    true dual-port RAM with its second port tied off (reserved for
    future direct sharing). *)

type config = {
  n_pes : int;
  bus_addr_width : int;
  bus_data_width : int;
  mem_addr_width : int;         (** per-BAN local memory, log2 words *)
  global_mem_addr_width : int;  (** shared/global memory, log2 words *)
  fifo_depth : int;             (** Bi-FIFO depth (user option 3.3) *)
  arb_policy : Busgen_modlib.Arbiter.policy;  (** global arbiter *)
  cpu : Busgen_modlib.Cbi.pe;
  accelerator : accelerator;
  mem_kind : mem_kind;
      (** a non-CPU hardware function on the global bus (user option
          4.2); honoured by the architectures with a global memory BAN *)
  n_subsystems : int;
      (** SplitBA: number of bus subsystems (2 in the paper; the
          generator accepts any [>= 2] via the full bridge mesh);
          ignored by the other architectures *)
  protect : bool;
      (** instantiate bus error-protection hardware: a [WATCHDOG] across
          each bus's select/acknowledge pair and a [PARITY_GEN] /
          [PARITY_CHK] pair over the write-data lines, with the timeout,
          release and parity-error strobes exported on the enclosing
          boundary module *)
}

val paper_config : n_pes:int -> config
(** The paper's evaluation setup: 32-bit addresses, 64-bit data, 8 MB
    SRAM per BAN ([mem_addr_width = 20]), Bi-FIFO depth 1024, FCFS global
    arbiter, MPC755 cores. *)

val small_config : n_pes:int -> config
(** A scaled-down variant (256-word memories, depth-8 FIFOs, 16-bit
    data) for fast RTL interpretation in tests. *)

type generated = {
  top : Busgen_rtl.Circuit.t;
  entries : Busgen_wirelib.Spec.entry list;
      (** every Wire Library entry used, in generation order *)
  infos : (string * Netlist.info) list;
      (** netlister report per generated level (BAN, subsystem, system) *)
}

val bfba : config -> generated
(** The Bi-FIFO ring.  With [accelerator = Acc_fft] this is
    {!bfba_with_fft}. *)

val bfba_with_fft : config -> generated
(** Paper Example 8 / Fig. 17: the BFBA system with a hardware FFT BAN
    wired to BAN B over the dedicated [w_fft_*] wires.  Needs at least
    2 PEs and a bus of 32 bits or wider.
    @raise Invalid_argument otherwise. *)

val gbavi : config -> generated

val gbavii : config -> generated
(** GBAVI plus a global memory BAN — the version II the paper mentions
    but omits for space (Section IV.B): segmented neighbour access as in
    GBAVI, with an arbitrated global memory as in GBAVIII. *)

val gbaviii : config -> generated
val hybrid : config -> generated
val splitba : config -> generated
(** The paper's two-subsystem split (Fig. 7): {!splitba_n} at 2. *)

val splitba_n : ?n_ss:int -> config -> generated
(** SplitBA generalized to [n_ss] bus subsystems (default 2), connected
    by a full mesh of unidirectional bus bridges — each hub decodes one
    power-of-two window per peer, so any PE reaches any subsystem's
    shared memory in one bridge hop.  [n_pes] must be a positive
    multiple of [n_ss].
    @raise Invalid_argument otherwise. *)

val ggba : config -> generated
(** Hand-designed baseline (Fig. 9): one global bus, one shared memory. *)

val ccba : config -> generated
(** Hand-designed CoreConnect-like baseline (Fig. 8): shared PLB-style
    bus with per-processor SRAMs, a global SRAM, and two extra
    arbitration pipeline stages (5-cycle read vs. 3, Section VI.C). *)
