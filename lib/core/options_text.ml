let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let bus_type_of = function
  | "bfba" -> Ok Options.Bfba
  | "gbavi" -> Ok Options.Gbavi
  | "gbaviii" -> Ok Options.Gbaviii
  | "splitba" -> Ok Options.Splitba
  | s -> Error (Printf.sprintf "unknown bus type %S" s)

let cpu_of = function
  | "mpc750" -> Ok Options.Cpu_mpc750
  | "mpc755" -> Ok Options.Cpu_mpc755
  | "mpc7410" -> Ok Options.Cpu_mpc7410
  | "arm9tdmi" -> Ok Options.Cpu_arm9tdmi
  | s -> Error (Printf.sprintf "unknown CPU core %S" s)

let mem_of = function
  | "sram" -> Ok Options.Mem_sram
  | "dram" -> Ok Options.Mem_dram
  | "dpram" -> Ok Options.Mem_dpram
  | "fifo" -> Ok Options.Mem_fifo
  | s -> Error (Printf.sprintf "unknown memory type %S" s)

let int_of lineno s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "line %d: expected a number, got %S" lineno s)

(* Parse "[addr N] [data N] [depth N]" option pairs of a bus line. *)
let rec bus_opts lineno (bus : Options.bus_prop) = function
  | [] -> Ok bus
  | "addr" :: v :: rest ->
      let* v = int_of lineno v in
      bus_opts lineno { bus with Options.bus_addr_width = v } rest
  | "data" :: v :: rest ->
      let* v = int_of lineno v in
      bus_opts lineno { bus with Options.bus_data_width = v } rest
  | "depth" :: v :: rest ->
      let* v = int_of lineno v in
      bus_opts lineno { bus with Options.bififo_depth = Some v } rest
  | tok :: _ -> Error (Printf.sprintf "line %d: unexpected %S on a bus line" lineno tok)

let rec mems_of lineno acc = function
  | [] -> Ok (List.rev acc)
  | "mem" :: ty :: aw :: dw :: rest ->
      let* mem_type = mem_of ty in
      let* mem_addr_width = int_of lineno aw in
      let* mem_data_width = int_of lineno dw in
      mems_of lineno
        ({ Options.mem_type; mem_addr_width; mem_data_width } :: acc)
        rest
  | tok :: _ ->
      Error
        (Printf.sprintf
           "line %d: expected 'mem <type> <addr_width> <data_width>', got %S"
           lineno tok)

let parse src =
  let lines = String.split_on_char '\n' src in
  let protection = ref false in
  (* Accumulate subsystems in reverse; the current subsystem's buses and
     bans also in reverse. *)
  let finalize (buses, bans) =
    { Options.buses = List.rev buses; bans = List.rev bans }
  in
  let rec go lineno subsystems current lines =
    match lines with
    | [] -> (
        let subsystems =
          match current with
          | None -> List.rev subsystems
          | Some c -> List.rev (finalize c :: subsystems)
        in
        match subsystems with
        | [] -> Error "no subsystems (the file needs at least one 'subsystem')"
        | ss -> Ok { Options.subsystems = ss; protection = !protection })
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let words =
          String.split_on_char ' ' (String.trim line)
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (( <> ) "")
        in
        match words with
        | [] -> go (lineno + 1) subsystems current rest
        | "protection" :: tail -> (
            match tail with
            | [] | [ "on" ] ->
                protection := true;
                go (lineno + 1) subsystems current rest
            | [ "off" ] ->
                protection := false;
                go (lineno + 1) subsystems current rest
            | tok :: _ ->
                Error
                  (Printf.sprintf
                     "line %d: 'protection' takes 'on' or 'off', got %S" lineno
                     tok))
        | "subsystem" :: [] ->
            let subsystems =
              match current with
              | None -> subsystems
              | Some c -> finalize c :: subsystems
            in
            go (lineno + 1) subsystems (Some ([], [])) rest
        | "bus" :: ty :: opts -> (
            match current with
            | None -> Error (Printf.sprintf "line %d: 'bus' before 'subsystem'" lineno)
            | Some (buses, bans) ->
                let* bus = bus_type_of ty in
                let* bus =
                  bus_opts lineno
                    { Options.bus; bus_addr_width = 32; bus_data_width = 64;
                      bififo_depth = None }
                    opts
                in
                go (lineno + 1) subsystems (Some (bus :: buses, bans)) rest)
        | "ban" :: spec -> (
            match current with
            | None -> Error (Printf.sprintf "line %d: 'ban' before 'subsystem'" lineno)
            | Some (buses, bans) ->
                let* ban =
                  match spec with
                  | "cpu" :: core :: mems ->
                      let* cpu = cpu_of core in
                      let* memories = mems_of lineno [] mems in
                      Ok { Options.cpu = Some cpu; non_cpu = None; memories }
                  | [ "fft" ] ->
                      Ok
                        { Options.cpu = None; non_cpu = Some Options.Fft;
                          memories = [] }
                  | [ "dct" ] ->
                      Ok
                        { Options.cpu = None; non_cpu = Some Options.Dct;
                          memories = [] }
                  | [ "mpeg2" ] ->
                      Ok
                        { Options.cpu = None;
                          non_cpu = Some Options.Mpeg2_decoder; memories = [] }
                  | ("mem" :: _) as mems ->
                      let* memories = mems_of lineno [] mems in
                      Ok { Options.cpu = None; non_cpu = None; memories }
                  | tok :: _ ->
                      Error
                        (Printf.sprintf "line %d: unexpected BAN kind %S"
                           lineno tok)
                  | [] ->
                      Error (Printf.sprintf "line %d: empty 'ban' line" lineno)
                in
                go (lineno + 1) subsystems (Some (buses, ban :: bans)) rest)
        | tok :: _ ->
            Error (Printf.sprintf "line %d: unexpected %S" lineno tok))
  in
  go 1 [] None lines

let bus_type_name = function
  | Options.Bfba -> "bfba"
  | Options.Gbavi -> "gbavi"
  | Options.Gbaviii -> "gbaviii"
  | Options.Splitba -> "splitba"

let cpu_name = function
  | Options.Cpu_mpc750 -> "mpc750"
  | Options.Cpu_mpc755 -> "mpc755"
  | Options.Cpu_mpc7410 -> "mpc7410"
  | Options.Cpu_arm9tdmi -> "arm9tdmi"

let mem_name = function
  | Options.Mem_sram -> "sram"
  | Options.Mem_dram -> "dram"
  | Options.Mem_dpram -> "dpram"
  | Options.Mem_fifo -> "fifo"

let print (t : Options.t) =
  let buf = Buffer.create 256 in
  if t.Options.protection then Buffer.add_string buf "protection on\n";
  List.iter
    (fun ss ->
      Buffer.add_string buf "subsystem\n";
      List.iter
        (fun (b : Options.bus_prop) ->
          Buffer.add_string buf
            (Printf.sprintf "  bus %s addr %d data %d%s\n"
               (bus_type_name b.Options.bus)
               b.Options.bus_addr_width b.Options.bus_data_width
               (match b.Options.bififo_depth with
               | Some d -> Printf.sprintf " depth %d" d
               | None -> "")))
        ss.Options.buses;
      List.iter
        (fun (ban : Options.ban_prop) ->
          let mems =
            String.concat ""
              (List.map
                 (fun (m : Options.memory_prop) ->
                   Printf.sprintf " mem %s %d %d"
                     (mem_name m.Options.mem_type)
                     m.Options.mem_addr_width m.Options.mem_data_width)
                 ban.Options.memories)
          in
          match (ban.Options.cpu, ban.Options.non_cpu) with
          | Some cpu, _ ->
              Buffer.add_string buf
                (Printf.sprintf "  ban cpu %s%s\n" (cpu_name cpu) mems)
          | None, Some Options.Dct -> Buffer.add_string buf "  ban dct\n"
          | None, Some Options.Fft -> Buffer.add_string buf "  ban fft\n"
          | None, Some Options.Mpeg2_decoder ->
              Buffer.add_string buf "  ban mpeg2\n"
          | None, None ->
              Buffer.add_string buf (Printf.sprintf "  ban%s\n" mems))
        ss.Options.bans)
    t.Options.subsystems;
  Buffer.contents buf

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      parse src
