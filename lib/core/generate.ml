open Busgen_rtl

type arch = Bfba | Gbavi | Gbavii | Gbaviii | Hybrid | Splitba | Ggba | Ccba

let arch_name = function
  | Bfba -> "BFBA"
  | Gbavi -> "GBAVI"
  | Gbavii -> "GBAVII"
  | Gbaviii -> "GBAVIII"
  | Hybrid -> "Hybrid"
  | Splitba -> "SplitBA"
  | Ggba -> "GGBA"
  | Ccba -> "CCBA"

let arch_choices =
  [ "bfba"; "gbavi"; "gbavii"; "gbaviii"; "hybrid"; "splitba"; "ggba"; "ccba" ]

let arch_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "bfba" -> Ok Bfba
  | "gbavi" -> Ok Gbavi
  | "gbavii" -> Ok Gbavii
  | "gbaviii" -> Ok Gbaviii
  | "hybrid" -> Ok Hybrid
  | "splitba" -> Ok Splitba
  | "ggba" -> Ok Ggba
  | "ccba" -> Ok Ccba
  | _ ->
      Error
        (Printf.sprintf "unknown architecture %S (expected one of %s)" s
           (String.concat ", " arch_choices))

let arch_of_options (t : Options.t) =
  let bus_types ss = List.map (fun b -> b.Options.bus) ss.Options.buses in
  match t.Options.subsystems with
  | [ ss ] -> (
      match List.sort compare (bus_types ss) with
      | [ Options.Bfba ] -> Ok Bfba
      | [ Options.Gbavi ] -> Ok Gbavi
      | [ Options.Gbaviii ] -> Ok Gbaviii
      | [ Options.Gbaviii; Options.Bfba ] | [ Options.Bfba; Options.Gbaviii ]
        ->
          Ok Hybrid
      | [ Options.Gbavi; Options.Gbaviii ] | [ Options.Gbaviii; Options.Gbavi ]
        ->
          (* The paper notes GBAVII "could easily be added to our tool":
             it combines GBAVI's segmented neighbour access with a global
             memory, i.e. this bus pair. *)
          Ok Gbavii
      | [ Options.Splitba ] ->
          Error "SplitBA needs two Bus Subsystems (one per bus half)"
      | _ -> Error "unsupported bus combination in a single subsystem")
  | [] -> Error "no subsystems"
  | (_ :: _ :: _) as subsystems ->
      (* Two subsystems are the paper's SplitBA (Fig. 7); the generator
         extends the same architecture to any count over a full bridge
         mesh. *)
      if
        List.for_all
          (fun ss -> bus_types ss = [ Options.Splitba ])
          subsystems
      then Ok Splitba
      else Error "multiple subsystems are only supported for SplitBA"

let config_of_options (t : Options.t) =
  match Options.validate t with
  | Error es -> Error (String.concat "; " es)
  | Ok () ->
      let all_bans =
        List.concat_map (fun ss -> ss.Options.bans) t.Options.subsystems
      in
      let cpu_bans =
        List.filter_map (fun b -> b.Options.cpu) all_bans
      in
      let n_pes = List.length cpu_bans in
      if
        List.exists
          (fun b -> b.Options.non_cpu = Some Options.Mpeg2_decoder)
          all_bans
      then
        Error
          "a hardware MPEG2-decoder BAN is accepted by the option model \
           but not elaborated by this generator (the DCT accelerator \
           demonstrates non-CPU BANs; see WALKTHROUGH.md)"
      else if n_pes = 0 then Error "no CPU BANs in the option tree"
      else
        let cpu = Options.cpu_to_modlib (List.hd cpu_bans) in
        let first_bus =
          List.hd (List.hd t.Options.subsystems).Options.buses
        in
        let mems =
          List.concat_map (fun b -> b.Options.memories) all_bans
        in
        let mem_addr_width =
          match mems with m :: _ -> m.Options.mem_addr_width | [] -> 20
        in
        let fifo_depth =
          List.fold_left
            (fun acc ss ->
              List.fold_left
                (fun acc b ->
                  match b.Options.bififo_depth with
                  | Some d -> d
                  | None -> acc)
                acc ss.Options.buses)
            1024 t.Options.subsystems
        in
        let mem_kind =
          match mems with
          | { Options.mem_type = Options.Mem_dram; _ } :: _ -> Archs.Mk_dram
          | { Options.mem_type = Options.Mem_dpram; _ } :: _ -> Archs.Mk_dpram
          | { Options.mem_type = (Options.Mem_sram | Options.Mem_fifo); _ } :: _
          | [] ->
              Archs.Mk_sram
        in
        let accelerator =
          if
            List.exists
              (fun b -> b.Options.non_cpu = Some Options.Fft)
              all_bans
          then Archs.Acc_fft
          else if
            List.exists
              (fun b -> b.Options.non_cpu = Some Options.Dct)
              all_bans
          then Archs.Acc_dct
          else Archs.Acc_none
        in
        Ok
          {
            Archs.n_pes;
            bus_addr_width = first_bus.Options.bus_addr_width;
            bus_data_width = first_bus.Options.bus_data_width;
            mem_addr_width;
            global_mem_addr_width = mem_addr_width;
            fifo_depth;
            arb_policy = Busgen_modlib.Arbiter.Fcfs;
            cpu;
            accelerator;
            mem_kind;
            n_subsystems = max 2 (List.length t.Options.subsystems);
            protect = t.Options.protection;
          }

type t = {
  arch : arch;
  config : Archs.config;
  generated : Archs.generated;
  generation_time_ms : float;
  gate_count : int;
  register_bits : int;
  memory_bits : int;
  module_count : int;
  depth_levels : int;
}

let builder_of_arch = function
  | Bfba -> Archs.bfba
  | Gbavi -> Archs.gbavi
  | Gbavii -> Archs.gbavii
  | Gbaviii -> Archs.gbaviii
  | Hybrid -> Archs.hybrid
  | Splitba -> Archs.splitba
  | Ggba -> Archs.ggba
  | Ccba -> Archs.ccba

let generate arch config =
  let t0 = Unix.gettimeofday () in
  let generated = builder_of_arch arch config in
  let t1 = Unix.gettimeofday () in
  let area = Area.of_circuit generated.Archs.top in
  let depth = Depth.of_circuit generated.Archs.top in
  let module_count =
    1 + List.length (Circuit.sub_circuits generated.Archs.top)
  in
  {
    arch;
    config;
    generated;
    generation_time_ms = (t1 -. t0) *. 1000.;
    gate_count = Area.gates area;
    register_bits = area.Area.register_bits;
    memory_bits = area.Area.memory_bits;
    module_count;
    depth_levels = depth.Depth.levels;
  }

let from_options t =
  match arch_of_options t with
  | Error _ as e -> e
  | Ok arch -> (
      match config_of_options t with
      | Error _ as e -> e
      | Ok config -> (
          (* Builders reject impossible combinations (e.g. an FFT BAN on
             a non-BFBA bus) with Invalid_argument; surface those as
             ordinary option errors. *)
          try Ok (generate arch config)
          with Invalid_argument msg -> Error msg))

(* ------------------------------------------------------------------ *)
(* Provenance: tool version and design hash                            *)
(* ------------------------------------------------------------------ *)

let tool_version = "bussyn 0.4.0"

(* Canonical text of everything that determines the generated circuit.
   Any field change (or a renamed constructor) changes the hash — which
   is the point: a checkpoint taken against one generation must refuse
   to resume against another. *)
let config_text (c : Archs.config) =
  let policy =
    match c.Archs.arb_policy with
    | Busgen_modlib.Arbiter.Priority -> "priority"
    | Busgen_modlib.Arbiter.Round_robin -> "round-robin"
    | Busgen_modlib.Arbiter.Fcfs -> "fcfs"
  in
  let acc =
    match c.Archs.accelerator with
    | Archs.Acc_none -> "none"
    | Archs.Acc_dct -> "dct"
    | Archs.Acc_fft -> "fft"
  in
  let mem =
    match c.Archs.mem_kind with
    | Archs.Mk_sram -> "sram"
    | Archs.Mk_dram -> "dram"
    | Archs.Mk_dpram -> "dpram"
  in
  Printf.sprintf
    "n_pes=%d addr=%d data=%d mem_addr=%d global_mem_addr=%d fifo=%d \
     arb=%s cpu=%s acc=%s mem=%s subsystems=%d protect=%b"
    c.Archs.n_pes c.Archs.bus_addr_width c.Archs.bus_data_width
    c.Archs.mem_addr_width c.Archs.global_mem_addr_width c.Archs.fifo_depth
    policy
    (Busgen_modlib.Cbi.pe_name c.Archs.cpu)
    acc mem c.Archs.n_subsystems c.Archs.protect

let design_hash arch config =
  let text = arch_name arch ^ ": " ^ config_text config in
  (* FNV-1a, 64-bit — stable across runs and OCaml versions, unlike
     [Hashtbl.hash] which is documented to vary. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code ch)))
          0x100000001b3L)
    text;
  Printf.sprintf "%016Lx" !h

let verilog_header r =
  [
    Printf.sprintf "Generated by %s" tool_version;
    Printf.sprintf "Architecture: %s, %d PE(s)" (arch_name r.arch)
      r.config.Archs.n_pes;
    Printf.sprintf "Options hash: %s" (design_hash r.arch r.config);
  ]

let verilog r = Verilog.of_design ~header:(verilog_header r) r.generated.Archs.top

let wire_library_text r = Busgen_wirelib.Text.print r.generated.Archs.entries

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>Bus System %s: %d PE(s)@,\
     generation time: %.2f ms@,\
     gate count (NAND2, bus logic): %d@,\
     register bits: %d@,\
     memory bits: %d@,\
     module definitions: %d@,\
     critical path: %d gate levels@]"
    (arch_name r.arch) r.config.Archs.n_pes r.generation_time_ms r.gate_count
    r.register_bits r.memory_bits r.module_count r.depth_levels

let write_output ~dir r =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let v_files =
    Verilog.write_design ~header:(verilog_header r) ~dir
      r.generated.Archs.top
  in
  let wires_path = Filename.concat dir "wires.txt" in
  let oc = open_out wires_path in
  output_string oc (wire_library_text r);
  close_out oc;
  let report_path = Filename.concat dir "report.txt" in
  let oc = open_out report_path in
  output_string oc (Format.asprintf "%a@." pp_report r);
  close_out oc;
  v_files @ [ wires_path; report_path ]
