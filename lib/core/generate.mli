(** BusSyn front-end: from user options to a generated Bus System with
    the paper's reported metrics (generation time, NAND2 gate count).

    [GGBA] and [CCBA] are the hand-designed baselines — they can be built
    for comparison but are not reachable from user options, exactly as in
    the paper. *)

type arch = Bfba | Gbavi | Gbavii | Gbaviii | Hybrid | Splitba | Ggba | Ccba

val arch_name : arch -> string

val arch_choices : string list
(** Lower-case names accepted by {!arch_of_string}, in listing order. *)

val arch_of_string : string -> (arch, string) result
(** Case-insensitive parse of an architecture name.  The error message
    lists every valid choice, so front-ends can surface it verbatim. *)

val arch_of_options : Options.t -> (arch, string) result
(** Dispatch on the option tree: one subsystem with a single BFBA /
    GBAVI / GBAVIII bus; one subsystem with BFBA+GBAVIII buses (Hybrid,
    Example 10); or two subsystems of SplitBA buses. *)

val config_of_options : Options.t -> (Archs.config, string) result
(** Extract the architecture configuration (PE count, widths, FIFO
    depth) from validated options. *)

type t = {
  arch : arch;
  config : Archs.config;
  generated : Archs.generated;
  generation_time_ms : float;   (** wall-clock, as in paper Table V *)
  gate_count : int;             (** NAND2 equivalents, memories excluded *)
  register_bits : int;
  memory_bits : int;
  module_count : int;           (** distinct module definitions *)
  depth_levels : int;           (** combinational critical path, gate levels *)
}

val generate : arch -> Archs.config -> t
(** Run the generator and measure it. *)

val from_options : Options.t -> (t, string) Stdlib.result
(** Validate options, dispatch, generate. *)

val tool_version : string
(** Name and version of this generator, stamped into Verilog headers and
    simulation checkpoints. *)

val design_hash : arch -> Archs.config -> string
(** Stable 16-hex-digit content hash (FNV-1a) over the architecture name
    and the canonical text of every {!Archs.config} field.  Two equal
    hashes mean the generator would produce the same circuit; Verilog
    headers carry it and checkpoints refuse to resume across a
    mismatch. *)

val verilog : t -> string
(** Full synthesizable Verilog for the generated system, stamped with a
    provenance header ({!tool_version}, architecture, {!design_hash}). *)

val wire_library_text : t -> string
(** The Wire Library entries used, in the paper's ASCII format. *)

val write_output : dir:string -> t -> string list
(** Write one [.v] per module plus [wires.txt] and [report.txt] under
    [dir]; returns the paths. *)

val pp_report : Format.formatter -> t -> unit
