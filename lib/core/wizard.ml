exception Eof

let run ~read ~emit =
  let ask prompt ~default ~parse =
    let rec go () =
      emit (Printf.sprintf "%s [%s]: " prompt default);
      match read () with
      | None -> raise Eof
      | Some line -> (
          let answer = String.trim line in
          let answer = if answer = "" then default else answer in
          match parse answer with
          | Ok v -> v
          | Error why ->
              emit (Printf.sprintf "  ! %s" why);
              go ())
    in
    go ()
  in
  let int_in ~lo ~hi answer =
    match int_of_string_opt answer with
    | Some v when v >= lo && v <= hi -> Ok v
    | Some v -> Error (Printf.sprintf "%d out of [%d, %d]" v lo hi)
    | None -> Error (Printf.sprintf "not a number: %s" answer)
  in
  let choice ~what table answer =
    let key = String.lowercase_ascii answer in
    match List.assoc_opt key table with
    | Some v -> Ok v
    | None ->
        Error
          (Printf.sprintf "unknown %s %s (choose: %s)" what answer
             (String.concat ", " (List.map fst table)))
  in
  let ask_int prompt ~default ~lo ~hi =
    ask prompt ~default:(string_of_int default) ~parse:(int_in ~lo ~hi)
  in
  try
    emit "BusSyn option entry (paper Fig. 18); empty answer = default.";
    (* 1. Bus System property. *)
    let n_ss =
      ask_int "1. number of bus subsystems (>1 = SplitBA)" ~default:1 ~lo:1
        ~hi:8
    in
    let subsystems =
      List.init n_ss (fun si ->
          emit (Printf.sprintf "-- subsystem %d --" si);
          (* 2. Subsystem property. *)
          let n_buses =
            ask_int "2.2 number of buses (2 = hybrid pair)" ~default:1 ~lo:1
              ~hi:2
          in
          let buses =
            List.init n_buses (fun bi ->
                let bus =
                  ask
                    (Printf.sprintf "2.3 bus %d type" bi)
                    ~default:(if n_ss > 1 then "splitba" else "gbaviii")
                    ~parse:
                      (choice ~what:"bus type"
                         [
                           ("gbavi", Options.Gbavi);
                           ("gbaviii", Options.Gbaviii);
                           ("bfba", Options.Bfba);
                           ("splitba", Options.Splitba);
                         ])
                in
                (* 3. Bus property. *)
                let bus_addr_width =
                  ask_int "3.1 bus address width" ~default:32 ~lo:8 ~hi:64
                in
                let bus_data_width =
                  ask_int "3.2 bus data width" ~default:64 ~lo:8 ~hi:128
                in
                let bififo_depth =
                  if bus = Options.Bfba then
                    Some
                      (ask_int "3.3 Bi-FIFO depth" ~default:1024 ~lo:2
                         ~hi:65536)
                  else None
                in
                { Options.bus; bus_addr_width; bus_data_width; bififo_depth })
          in
          let n_bans =
            ask_int "2.1 number of BANs" ~default:4 ~lo:1 ~hi:32
          in
          let bans =
            List.init n_bans (fun ki ->
                (* 4. BAN property. *)
                let kind =
                  ask
                    (Printf.sprintf "4.1 BAN %d function" ki)
                    ~default:"mpc755"
                    ~parse:
                      (choice ~what:"BAN function"
                         [
                           ("mpc750", `Cpu Options.Cpu_mpc750);
                           ("mpc755", `Cpu Options.Cpu_mpc755);
                           ("mpc7410", `Cpu Options.Cpu_mpc7410);
                           ("arm9tdmi", `Cpu Options.Cpu_arm9tdmi);
                           ("dct", `Non_cpu Options.Dct);
                           ("fft", `Non_cpu Options.Fft);
                           ("memory", `Memory);
                         ])
                in
                match kind with
                | `Non_cpu f ->
                    { Options.cpu = None; non_cpu = Some f; memories = [] }
                | (`Cpu _ | `Memory) as k ->
                    (* 5. Memory property. *)
                    let mem_type =
                      ask "5.1 memory type" ~default:"sram"
                        ~parse:
                          (choice ~what:"memory type"
                             [
                               ("sram", Options.Mem_sram);
                               ("dram", Options.Mem_dram);
                               ("dpram", Options.Mem_dpram);
                             ])
                    in
                    let mem_addr_width =
                      ask_int "5.2 memory address width" ~default:20 ~lo:1
                        ~hi:20
                    in
                    let mem_data_width =
                      ask_int "5.3 memory data width" ~default:64 ~lo:8
                        ~hi:128
                    in
                    let mem =
                      { Options.mem_type; mem_addr_width; mem_data_width }
                    in
                    {
                      Options.cpu =
                        (match k with `Cpu c -> Some c | `Memory -> None);
                      non_cpu = None;
                      memories = [ mem ];
                    })
          in
          { Options.buses; bans })
    in
    let protection =
      ask "1.2 generate bus error protection (watchdog + parity)? [y/n]"
        ~default:"n"
        ~parse:(function
          | "y" | "yes" | "on" -> Ok true
          | "n" | "no" | "off" -> Ok false
          | s -> Error (Printf.sprintf "expected y or n, got %S" s))
    in
    let t = { Options.subsystems; protection } in
    match Options.validate t with
    | Ok () ->
        emit "options complete and valid.";
        Ok t
    | Error es -> Error (String.concat "; " es)
  with Eof -> Error "end of input before the option walk finished"
