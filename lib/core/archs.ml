open Busgen_rtl
module M = Busgen_modlib
module Spec = Busgen_wirelib.Spec

type accelerator = Acc_none | Acc_dct | Acc_fft

type mem_kind = Mk_sram | Mk_dram | Mk_dpram

type config = {
  n_pes : int;
  bus_addr_width : int;
  bus_data_width : int;
  mem_addr_width : int;
  global_mem_addr_width : int;
  fifo_depth : int;
  arb_policy : M.Arbiter.policy;
  cpu : M.Cbi.pe;
  accelerator : accelerator;
  mem_kind : mem_kind;
  n_subsystems : int;
  protect : bool;
}

let paper_config ~n_pes =
  {
    n_pes;
    bus_addr_width = 32;
    bus_data_width = 64;
    mem_addr_width = 20;
    global_mem_addr_width = 20;
    fifo_depth = 1024;
    arb_policy = M.Arbiter.Fcfs;
    cpu = M.Cbi.Mpc755;
    accelerator = Acc_none;
    mem_kind = Mk_sram;
    n_subsystems = 2;
    protect = false;
  }

let small_config ~n_pes =
  {
    n_pes;
    bus_addr_width = 32;
    bus_data_width = 16;
    mem_addr_width = 8;
    global_mem_addr_width = 8;
    fifo_depth = 8;
    arb_policy = M.Arbiter.Fcfs;
    cpu = M.Cbi.Mpc755;
    accelerator = Acc_none;
    mem_kind = Mk_sram;
    n_subsystems = 2;
    protect = false;
  }

type generated = {
  top : Circuit.t;
  entries : Spec.entry list;
  infos : (string * Netlist.info) list;
}

(* ------------------------------------------------------------------ *)
(* Wire-spec helpers                                                   *)
(* ------------------------------------------------------------------ *)

let ep m p msb lsb = { Spec.m_ref = Spec.Exact m; pname = p; wmsb = msb; wlsb = lsb }

(* Full-span wire between two ports. *)
let wf name width (m1, p1) (m2, p2) =
  {
    Spec.w_name = name;
    w_width = width;
    end1 = ep m1 p1 (width - 1) 0;
    end2 = ep m2 p2 (width - 1) 0;
  }

(* Wire whose second endpoint reads only the low [bits] bits. *)
let wlo name width ~bits (m1, p1) (m2, p2) =
  {
    Spec.w_name = name;
    w_width = width;
    end1 = ep m1 p1 (width - 1) 0;
    end2 = ep m2 p2 (bits - 1) 0;
  }

(* Group (chain/ring) wire over [members]. *)
let wg name width ~members p1 p2 =
  let g = Spec.Group ("BAN", members) in
  {
    Spec.w_name = name;
    w_width = width;
    end1 = { Spec.m_ref = g; pname = p1; wmsb = width - 1; wlsb = 0 };
    end2 = { Spec.m_ref = g; pname = p2; wmsb = width - 1; wlsb = 0 };
  }

(* A master->slave bus bundle: sel/rnw/addr/wdata forward, rdata/ack
   back.  [f1]/[f2] map the generic signal names to the two modules' port
   names.  [addr_bits] narrows the address seen by the slave. *)
let bus_link ~tag ~aw ~dw ?(addr_bits = 0) (m1, f1) (m2, f2) =
  let ab = if addr_bits = 0 then aw else addr_bits in
  [
    wf (tag ^ "_sel") 1 (m1, f1 "sel") (m2, f2 "sel");
    wf (tag ^ "_rnw") 1 (m1, f1 "rnw") (m2, f2 "rnw");
    (if ab = aw then wf (tag ^ "_addr") aw (m1, f1 "addr") (m2, f2 "addr")
     else wlo (tag ^ "_addr") aw ~bits:ab (m1, f1 "addr") (m2, f2 "addr"));
    wf (tag ^ "_wdata") dw (m1, f1 "wdata") (m2, f2 "wdata");
    wf (tag ^ "_rdata") dw (m2, f2 "rdata") (m1, f1 "rdata");
    wf (tag ^ "_ack") 1 (m2, f2 "ack") (m1, f1 "ack");
  ]

(* Common port-name maps. *)
let f_plain s = s
let f_pre pre s = pre ^ "_" ^ s
let f_cbi s = "bus_" ^ s
let f_mux_master s = "m_" ^ s

let f_mux_slave k s =
  match s with
  | "sel" | "rdata" | "ack" -> Printf.sprintf "s%d_%s" k s
  | _ -> "s_" ^ s

let f_join_master k s = Printf.sprintf "m%d_%s" k s

(* ------------------------------------------------------------------ *)
(* Shared sub-structures                                               *)
(* ------------------------------------------------------------------ *)

let zero1 = Bits.zero 1

(* Local memory chain: MBI + SRAM. *)
let mem_wires ~tag ~maw ~mdw (mbi, mem) =
  [
    wf (tag ^ "_csb") 1 (mbi, "csb") (mem, "csb");
    wf (tag ^ "_web") 1 (mbi, "web") (mem, "web");
    wf (tag ^ "_reb") 1 (mbi, "reb") (mem, "reb");
    wf (tag ^ "_maddr") maw (mbi, "m_addr") (mem, "addr");
    wf (tag ^ "_mwdata") mdw (mbi, "m_wdata") (mem, "wdata");
    wf (tag ^ "_mrdata") mdw (mem, "rdata") (mbi, "m_rdata");
  ]

(* HS_REGS + its slave adapter. *)
let hs_wires =
  [
    wf "w_hs_op_set" 1 ("HSS", "op_set") ("HS", "op_set");
    wf "w_hs_op_clr" 1 ("HSS", "op_clr") ("HS", "op_clr");
    wf "w_hs_rv_set" 1 ("HSS", "rv_set") ("HS", "rv_set");
    wf "w_hs_rv_clr" 1 ("HSS", "rv_clr") ("HS", "rv_clr");
    wf "w_hs_op_q" 1 ("HS", "op_q") ("HSS", "op_q");
    wf "w_hs_rv_q" 1 ("HS", "rv_q") ("HSS", "rv_q");
  ]

(* CPU socket: boundary <-> CBI, plus the CBI's self-grant. *)
let cpu_socket ~aw ~dw ~boundary =
  [
    wf "w_cpu_req" 1 (boundary, "cpu_req") ("CBI", "cpu_req");
    wf "w_cpu_rnw" 1 (boundary, "cpu_rnw") ("CBI", "cpu_rnw");
    wf "w_cpu_addr" aw (boundary, "cpu_addr") ("CBI", "cpu_addr");
    wf "w_cpu_wdata" dw (boundary, "cpu_wdata") ("CBI", "cpu_wdata");
    wf "w_cpu_rdata" dw ("CBI", "cpu_rdata") (boundary, "cpu_rdata");
    wf "w_cpu_ack" 1 ("CBI", "cpu_ack") (boundary, "cpu_ack");
  ]

let cbi_self_grant = [ wf "w_self_gnt" 1 ("CBI", "bus_req") ("CBI", "bus_gnt") ]

(* ------------------------------------------------------------------ *)
(* Module instances per configuration                                  *)
(* ------------------------------------------------------------------ *)

let sram_params c ~maw =
  {
    M.Sram.kind =
      (match c.mem_kind with
      | Mk_sram | Mk_dpram -> M.Sram.Sram
      | Mk_dram -> M.Sram.Dram);
    addr_width = maw;
    data_width = c.bus_data_width;
  }

let mbi_params c ~maw =
  M.Mbi.for_sram (sram_params c ~maw) ~bus_addr_width:c.bus_addr_width
    ~bus_data_width:c.bus_data_width

(* Local memory element and its MBI wiring, honouring the memory kind:
   SRAM/DRAM use the single-port template; DPRAM uses port A of the
   dual-port template with port B tied off. *)
let local_mem_element c ~maw =
  match c.mem_kind with
  | Mk_sram | Mk_dram ->
      ( { Netlist.el_name = "MEM";
          el_circuit = M.Catalog.create (M.Catalog.Spec_sram (sram_params c ~maw)) },
        [] )
  | Mk_dpram ->
      ( { Netlist.el_name = "MEM";
          el_circuit =
            M.Catalog.create
              (M.Catalog.Spec_dpram
                 { M.Dpram.addr_width = maw; data_width = c.bus_data_width }) },
        [
          ("MEM", "b_csb", Bits.of_bool true);
          ("MEM", "b_web", Bits.of_bool true);
          ("MEM", "b_reb", Bits.of_bool true);
          ("MEM", "b_addr", Bits.zero maw);
          ("MEM", "b_wdata", Bits.zero c.bus_data_width);
        ] )

let local_mem_wires c ~tag ~maw =
  let dw = c.bus_data_width in
  let port p = match c.mem_kind with Mk_dpram -> "a_" ^ p | Mk_sram | Mk_dram -> p in
  [
    wf (tag ^ "_csb") 1 ("MBI", "csb") ("MEM", port "csb");
    wf (tag ^ "_web") 1 ("MBI", "web") ("MEM", port "web");
    wf (tag ^ "_reb") 1 ("MBI", "reb") ("MEM", port "reb");
    wf (tag ^ "_maddr") maw ("MBI", "m_addr") ("MEM", port "addr");
    wf (tag ^ "_mwdata") dw ("MBI", "m_wdata") ("MEM", port "wdata");
    wf (tag ^ "_mrdata") dw ("MEM", port "rdata") ("MBI", "m_rdata");
  ]

let cbi_params c =
  { M.Cbi.pe = c.cpu; addr_width = c.bus_addr_width;
    data_width = c.bus_data_width }

let bififo_params c =
  { M.Bififo.data_width = c.bus_data_width; depth = c.fifo_depth }

let el name spec = { Netlist.el_name = name; el_circuit = M.Catalog.create spec }

(* Bus error-protection block (generated when [config.protect]): a
   watchdog across the bus's select/acknowledge pair plus an even-parity
   generator/checker over the write-data lines.  The timeout, release
   and parity-error strobes are exported on the enclosing boundary
   module; system assembly leaves them observable (RTL fault campaigns
   peek them as <instance>$bus_timeout etc.). *)
let watchdog_timeout = 64

let protect_elements c =
  let dw = c.bus_data_width in
  [
    el "WDOG"
      (M.Catalog.Spec_watchdog { M.Watchdog.timeout = watchdog_timeout });
    el "PARGEN"
      (M.Catalog.Spec_parity
         { M.Parity.data_width = dw; role = M.Parity.Generator });
    el "PARCHK"
      (M.Catalog.Spec_parity
         { M.Parity.data_width = dw; role = M.Parity.Checker });
  ]

let protect_wires c ~boundary ~sel ~ack ~data =
  let dw = c.bus_data_width in
  let sm, sp = sel and am, ap = ack and dm, dp = data in
  [
    wf "w_wd_req" 1 (sm, sp) ("WDOG", "req");
    wf "w_wd_ack" 1 (am, ap) ("WDOG", "ack");
    wf "w_wd_to" 1 ("WDOG", "timeout") (boundary, "bus_timeout");
    wf "w_wd_rel" 1 ("WDOG", "force_release") (boundary, "bus_release");
    wf "w_par_data" dw (dm, dp) ("PARGEN", "data");
    wf "w_par_chk" dw (dm, dp) ("PARCHK", "data");
    wf "w_par_bit" 1 ("PARGEN", "parity") ("PARCHK", "parity");
    wf "w_par_err" 1 ("PARCHK", "error") (boundary, "parity_error");
  ]

(* ------------------------------------------------------------------ *)
(* BFBA / Hybrid BAN                                                  *)
(* ------------------------------------------------------------------ *)

(* The BFBA BAN (paper Fig. 4); with [with_global] it is the Hybrid BAN
   (Fig. 6), which adds a GBI window onto the global bus. *)
let ban_bfba ?(with_fft = false) c ~with_global =
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let maw = c.mem_addr_width in
  let cw = M.Bififo.count_width (bififo_params c) in
  let regions =
    [
      { M.Busmux.base = Addrmap.local_mem_base; size = 1 lsl maw };
      { M.Busmux.base = Addrmap.own_hs_base; size = 2 };
      { M.Busmux.base = Addrmap.own_fifo_base; size = 4 };
      { M.Busmux.base = Addrmap.peer_base; size = Addrmap.peer_window_words };
    ]
    @ (if with_global then
         [ { M.Busmux.base = Addrmap.global_base;
             size = Addrmap.global_window_words } ]
       else [])
    @
    if with_fft then
      [ { M.Busmux.base = Addrmap.fft_base; size = Addrmap.fft_window_words } ]
    else []
  in
  let elements =
    [
      el "CBI" (M.Catalog.Spec_cbi (cbi_params c));
      el "LMUX"
        (M.Catalog.Spec_busmux
           { M.Busmux.addr_width = aw; data_width = dw; regions });
      el "MBI" (M.Catalog.Spec_mbi (mbi_params c ~maw));
      fst (local_mem_element c ~maw);
      el "HS" (M.Catalog.Spec_hs_regs { M.Hs_regs.init_op = true });
      el "HSS" (M.Catalog.Spec_hs_slave { M.Hs_slave.data_width = dw });
      el "BIF" (M.Catalog.Spec_bififo (bififo_params c));
      el "FSL"
        (M.Catalog.Spec_fifo_slave
           { M.Fifo_slave.data_width = dw; count_width = cw });
      el "PMUX"
        (M.Catalog.Spec_busmux
           {
             M.Busmux.addr_width = aw;
             data_width = dw;
             regions =
               [
                 { M.Busmux.base = Addrmap.peer_base + Addrmap.peer_hs_offset;
                   size = 2 };
                 { M.Busmux.base = Addrmap.peer_base + Addrmap.peer_fifo_offset;
                   size = 4 };
               ];
           });
    ]
    @ (if with_global then
         [
           el "GBI"
             (M.Catalog.Spec_gbi
                { M.Gbi.bus_type = M.Gbi.Gbi_gbaviii; addr_width = aw;
                  data_width = dw });
         ]
       else [])
    @ (if with_fft then
         [ el "FADP" (M.Catalog.Spec_fft_adapter { M.Fft_adapter.data_width = dw }) ]
       else [])
    @ (if c.protect then protect_elements c else [])
  in
  let fft_region = if with_global then 5 else 4 in
  let wires =
    cpu_socket ~aw ~dw ~boundary:"BAN"
    @ cbi_self_grant
    @ bus_link ~tag:"w_lb" ~aw ~dw ("CBI", f_cbi) ("LMUX", f_mux_master)
    @ bus_link ~tag:"w_r0" ~aw ~dw ("LMUX", f_mux_slave 0) ("MBI", f_plain)
    @ local_mem_wires c ~tag:"w_lm" ~maw
    @ bus_link ~tag:"w_r1" ~aw ~dw ~addr_bits:1
        ("LMUX", f_mux_slave 1) ("HSS", f_pre "b")
    @ bus_link ~tag:"w_r2" ~aw ~dw ~addr_bits:2
        ("LMUX", f_mux_slave 2) ("FSL", f_pre "r")
    @ bus_link ~tag:"w_r3" ~aw ~dw ("LMUX", f_mux_slave 3) ("BAN", f_pre "dn")
    @ hs_wires
    @ [
        (* Inbound peer window: boundary "up" bundle -> PMUX master. *)
      ]
    @ bus_link ~tag:"w_up" ~aw ~dw ("BAN", f_pre "up") ("PMUX", f_mux_master)
    @ bus_link ~tag:"w_p0" ~aw ~dw ~addr_bits:1
        ("PMUX", f_mux_slave 0) ("HSS", f_pre "a")
    @ bus_link ~tag:"w_p1" ~aw ~dw ~addr_bits:2
        ("PMUX", f_mux_slave 1) ("FSL", f_pre "s")
    @ [
        (* Fifo adapter <-> Bi-FIFO block (a->b direction only). *)
        wf "w_f_push" 1 ("FSL", "push") ("BIF", "a_push");
        wf "w_f_pdata" dw ("FSL", "push_data") ("BIF", "a_wdata");
        wf "w_f_twe" 1 ("FSL", "thr_we") ("BIF", "a_thr_we");
        wf "w_f_thr" cw ("FSL", "thr") ("BIF", "a_thr");
        wf "w_f_pop" 1 ("FSL", "pop") ("BIF", "b_pop");
        wf "w_f_head" dw ("BIF", "b_rdata") ("FSL", "head");
        wf "w_f_empty" 1 ("BIF", "b_empty") ("FSL", "empty");
        wf "w_f_full" 1 ("BIF", "a_full") ("FSL", "full");
        wf "w_f_count" cw ("BIF", "b_count") ("FSL", "count");
        wf "w_f_irq" 1 ("BIF", "irq_b") ("FSL", "irq");
        (* Receiver interrupt exported to the PE socket. *)
        wf "w_f_irq_cpu" 1 ("BIF", "irq_b") ("BAN", "cpu_irq");
      ]
    @ (if with_global then
         bus_link ~tag:"w_r4" ~aw ~dw ("LMUX", f_mux_slave 4) ("GBI", f_pre "i")
         @ bus_link ~tag:"w_g" ~aw ~dw ("GBI", f_pre "o") ("BAN", f_pre "g")
       else [])
    @
    if with_fft then
      bus_link ~tag:"w_rf" ~aw ~dw ~addr_bits:12
        ("LMUX", f_mux_slave fft_region)
        ("FADP", f_plain)
      @ [
          (* Fig. 17(b): the _b-suffixed pins exported at the BAN edge. *)
          wf "w_b_addr" 12 ("FADP", "addr_b") ("BAN", "addr_b");
          wf "w_b_data" dw ("FADP", "data_b") ("BAN", "data_b");
          wf "w_b_web" 1 ("FADP", "web_b") ("BAN", "web_b");
          wf "w_b_reb" 1 ("FADP", "reb_b") ("BAN", "reb_b");
          wf "w_b_srt" 1 ("FADP", "srt_b") ("BAN", "srt_b");
          wf "w_b_q" dw ("BAN", "q_b") ("FADP", "q_b");
          wf "w_b_ack" 1 ("BAN", "ack_b") ("FADP", "ack_b");
        ]
    else []
  in
  let wires =
    wires
    @
    if c.protect then
      protect_wires c ~boundary:"BAN" ~sel:("CBI", "bus_sel")
        ~ack:("LMUX", "m_ack") ~data:("CBI", "bus_wdata")
    else []
  in
  let ties =
    [
      ("BIF", "b_push", zero1);
      ("BIF", "b_wdata", Bits.zero dw);
      ("BIF", "a_pop", zero1);
      ("BIF", "b_thr_we", zero1);
      ("BIF", "b_thr", Bits.zero cw);
    ]
    @ snd (local_mem_element c ~maw)
    @ if with_global then [ ("GBI", "en", Bits.of_bool true) ] else []
  in
  let name =
    match (with_global, with_fft) with
    | true, _ -> "ban_hybrid"
    | false, true -> "ban_bfba_fft"
    | false, false -> "ban_bfba"
  in
  let entry = { Spec.lib_name = name; wires } in
  let circuit, info = Netlist.build ~name ~boundary:"BAN" ~elements ~entry ~ties () in
  (circuit, entry, info)

(* ------------------------------------------------------------------ *)
(* GBAVI BAN (paper Fig. 3)                                            *)
(* ------------------------------------------------------------------ *)

let ban_gbavi_like c ~with_global =
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let maw = c.mem_addr_width in
  let regions =
    [
      { M.Busmux.base = Addrmap.local_mem_base; size = 1 lsl maw };
      { M.Busmux.base = Addrmap.own_hs_base; size = 2 };
      { M.Busmux.base = Addrmap.peer_base; size = 2 };
      { M.Busmux.base = Addrmap.prevmem_base; size = 1 lsl maw };
    ]
    @
    if with_global then
      [ { M.Busmux.base = Addrmap.global_base;
          size = Addrmap.global_window_words } ]
    else []
  in
  let elements =
    [
      el "CBI" (M.Catalog.Spec_cbi (cbi_params c));
      el "LMUX"
        (M.Catalog.Spec_busmux
           { M.Busmux.addr_width = aw; data_width = dw; regions });
      el "JOIN"
        (M.Catalog.Spec_busjoin
           { M.Busjoin.masters = 2; addr_width = aw; data_width = dw });
      el "ARB"
        (M.Catalog.Spec_arbiter
           { M.Arbiter.policy = M.Arbiter.Priority; masters = 2 });
      el "BB"
        (M.Catalog.Spec_bb
           { M.Bb.bb_type = M.Bb.Gbavi; addr_width = aw; data_width = dw });
      el "MBI" (M.Catalog.Spec_mbi (mbi_params c ~maw));
      fst (local_mem_element c ~maw);
      el "HS" (M.Catalog.Spec_hs_regs { M.Hs_regs.init_op = false });
      el "HSS" (M.Catalog.Spec_hs_slave { M.Hs_slave.data_width = dw });
    ]
    @
    (if with_global then
       [
         el "GBI"
           (M.Catalog.Spec_gbi
              { M.Gbi.bus_type = M.Gbi.Gbi_gbaviii; addr_width = aw;
                data_width = dw });
       ]
     else [])
    @ (if c.protect then protect_elements c else [])
  in
  let wires =
    cpu_socket ~aw ~dw ~boundary:"BAN"
    @ cbi_self_grant
    @ bus_link ~tag:"w_lb" ~aw ~dw ("CBI", f_cbi) ("LMUX", f_mux_master)
    (* Region 0: local memory, behind the 2-master join. *)
    @ bus_link ~tag:"w_r0" ~aw ~dw ("LMUX", f_mux_slave 0) ("JOIN", f_join_master 0)
    @ [ wf "w_m0_req" 1 ("LMUX", "s0_sel") ("JOIN", "m0_req") ]
    (* Region 1: own handshake registers, receiver side. *)
    @ bus_link ~tag:"w_r1" ~aw ~dw ~addr_bits:1
        ("LMUX", f_mux_slave 1) ("HSS", f_pre "b")
    (* Region 2: forward window to the downstream neighbour's HS. *)
    @ bus_link ~tag:"w_r2" ~aw ~dw ("LMUX", f_mux_slave 2) ("BAN", f_pre "dnhs")
    (* Region 3: backward window into the upstream neighbour's memory. *)
    @ bus_link ~tag:"w_r3" ~aw ~dw ("LMUX", f_mux_slave 3) ("BAN", f_pre "upmem")
    (* Inbound: the upstream neighbour writing our HS side A. *)
    @ bus_link ~tag:"w_ph" ~aw ~dw ~addr_bits:1
        ("BAN", f_pre "prevhs") ("HSS", f_pre "a")
    (* Inbound: the downstream neighbour reading our memory, through the
       bus bridge onto the shared segment. *)
    @ bus_link ~tag:"w_nm" ~aw ~dw ("BAN", f_pre "nextmem") ("BB", f_pre "a")
    @ bus_link ~tag:"w_bb" ~aw ~dw ("BB", f_pre "b") ("JOIN", f_join_master 1)
    @ [ wf "w_m1_req" 1 ("BB", "b_sel") ("JOIN", "m1_req") ]
    (* Join arbitration. *)
    @ [
        wf "w_jreq" 2 ("JOIN", "req") ("ARB", "req");
        wf "w_jgnt" 2 ("ARB", "grant") ("JOIN", "gnt");
      ]
    (* Join slave side -> memory. *)
    @ bus_link ~tag:"w_js" ~aw ~dw ("JOIN", f_pre "s") ("MBI", f_plain)
    @ local_mem_wires c ~tag:"w_lm" ~maw
    @ hs_wires
    @
    (if with_global then
       bus_link ~tag:"w_r4" ~aw ~dw ("LMUX", f_mux_slave 4) ("GBI", f_pre "i")
       @ bus_link ~tag:"w_g" ~aw ~dw ("GBI", f_pre "o") ("BAN", f_pre "g")
     else [])
  in
  (* The bus_link helper expects a slave naming of sel/rnw/addr/wdata on
     the JOIN slave side; JOIN's slave ports are s_sel (outputs), so the
     link above is reversed: fix by building it manually. *)
  let wires =
    List.filter
      (fun w ->
        not (String.length w.Spec.w_name >= 4 && String.sub w.Spec.w_name 0 4 = "w_js"))
      wires
    @ [
        wf "w_js_sel" 1 ("JOIN", "s_sel") ("MBI", "sel");
        wf "w_js_rnw" 1 ("JOIN", "s_rnw") ("MBI", "rnw");
        wf "w_js_addr" aw ("JOIN", "s_addr") ("MBI", "addr");
        wf "w_js_wdata" dw ("JOIN", "s_wdata") ("MBI", "wdata");
        wf "w_js_rdata" dw ("MBI", "rdata") ("JOIN", "s_rdata");
        wf "w_js_ack" 1 ("MBI", "ack") ("JOIN", "s_ack");
      ]
    @
    if c.protect then
      protect_wires c ~boundary:"BAN" ~sel:("CBI", "bus_sel")
        ~ack:("LMUX", "m_ack") ~data:("CBI", "bus_wdata")
    else []
  in
  let ties =
    [ ("BB", "enable", Bits.of_bool true) ]
    @ snd (local_mem_element c ~maw)
    @ if with_global then [ ("GBI", "en", Bits.of_bool true) ] else []
  in
  let name = if with_global then "ban_gbavii" else "ban_gbavi" in
  let entry = { Spec.lib_name = name; wires } in
  let circuit, info =
    Netlist.build ~name ~boundary:"BAN" ~elements ~entry ~ties ()
  in
  (circuit, entry, info)

(* ------------------------------------------------------------------ *)
(* GBAVIII BAN (paper Fig. 5)                                          *)
(* ------------------------------------------------------------------ *)

let ban_gbaviii c =
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let maw = c.mem_addr_width in
  let regions =
    [
      { M.Busmux.base = Addrmap.local_mem_base; size = 1 lsl maw };
      { M.Busmux.base = Addrmap.global_base;
        size = Addrmap.global_window_words };
    ]
  in
  let elements =
    [
      el "CBI" (M.Catalog.Spec_cbi (cbi_params c));
      el "LMUX"
        (M.Catalog.Spec_busmux
           { M.Busmux.addr_width = aw; data_width = dw; regions });
      el "MBI" (M.Catalog.Spec_mbi (mbi_params c ~maw));
      fst (local_mem_element c ~maw);
      el "GBI"
        (M.Catalog.Spec_gbi
           { M.Gbi.bus_type = M.Gbi.Gbi_gbaviii; addr_width = aw;
             data_width = dw });
    ]
    @ (if c.protect then protect_elements c else [])
  in
  let wires =
    cpu_socket ~aw ~dw ~boundary:"BAN"
    @ cbi_self_grant
    @ bus_link ~tag:"w_lb" ~aw ~dw ("CBI", f_cbi) ("LMUX", f_mux_master)
    @ bus_link ~tag:"w_r0" ~aw ~dw ("LMUX", f_mux_slave 0) ("MBI", f_plain)
    @ local_mem_wires c ~tag:"w_lm" ~maw
    @ bus_link ~tag:"w_r1" ~aw ~dw ("LMUX", f_mux_slave 1) ("GBI", f_pre "i")
    @ bus_link ~tag:"w_g" ~aw ~dw ("GBI", f_pre "o") ("BAN", f_pre "g")
    @ (if c.protect then
         protect_wires c ~boundary:"BAN" ~sel:("CBI", "bus_sel")
           ~ack:("LMUX", "m_ack") ~data:("CBI", "bus_wdata")
       else [])
  in
  let ties =
    [ ("GBI", "en", Bits.of_bool true) ] @ snd (local_mem_element c ~maw)
  in
  let entry = { Spec.lib_name = "ban_gbaviii"; wires } in
  let circuit, info =
    Netlist.build ~name:"ban_gbaviii" ~boundary:"BAN" ~elements ~entry ~ties ()
  in
  (circuit, entry, info)

(* CPU-only BAN (GGBA and SplitBA processor BANs): the CBI's bus side is
   the BAN's master bundle, including req/gnt for the global arbiter. *)
let ban_cbionly c =
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let elements = [ el "CBI" (M.Catalog.Spec_cbi (cbi_params c)) ] in
  let wires =
    cpu_socket ~aw ~dw ~boundary:"BAN"
    @ bus_link ~tag:"w_g" ~aw ~dw ("CBI", f_cbi) ("BAN", f_pre "g")
    @ [
        wf "w_g_req" 1 ("CBI", "bus_req") ("BAN", "g_req");
        wf "w_g_gnt" 1 ("BAN", "g_gnt") ("CBI", "bus_gnt");
      ]
  in
  let entry = { Spec.lib_name = "ban_cbionly"; wires } in
  let circuit, info =
    Netlist.build ~name:"ban_cbionly" ~boundary:"BAN" ~elements ~entry ()
  in
  (circuit, entry, info)

(* ------------------------------------------------------------------ *)
(* Global-memory BAN (BAN G of Figs. 5/6, and the GGBA hub)            *)
(* ------------------------------------------------------------------ *)

let ban_global c ~masters =
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let gmaw = c.global_mem_addr_width in
  let with_dct = c.accelerator = Acc_dct in
  let elements =
    [
      el "JOIN"
        (M.Catalog.Spec_busjoin
           { M.Busjoin.masters; addr_width = aw; data_width = dw });
      el "ABI" (M.Catalog.Spec_abi { M.Abi.masters });
      el "ARB"
        (M.Catalog.Spec_arbiter { M.Arbiter.policy = c.arb_policy; masters });
      el "MBI" (M.Catalog.Spec_mbi (mbi_params c ~maw:gmaw));
      el "MEM" (M.Catalog.Spec_sram (sram_params c ~maw:gmaw));
    ]
    @
    (if with_dct then
       [
         el "DEMUX"
           (M.Catalog.Spec_busmux
              {
                M.Busmux.addr_width = aw;
                data_width = dw;
                regions =
                  [
                    { M.Busmux.base = Addrmap.global_base; size = 1 lsl gmaw };
                    { M.Busmux.base = Addrmap.dct_base; size = 32 };
                  ];
              });
         el "DCT" (M.Catalog.Spec_dct { M.Dct_ip.data_width = dw });
       ]
     else [])
    @ (if c.protect then protect_elements c else [])
  in
  let master_wires =
    List.concat
      (List.init masters (fun k ->
           bus_link ~tag:(Printf.sprintf "w_m%d" k) ~aw ~dw
             ("BANG", f_pre (Printf.sprintf "m%d" k))
             ("JOIN", f_join_master k)
           @ [
               wf (Printf.sprintf "w_m%d_req" k) 1
                 ("BANG", Printf.sprintf "m%d_req" k)
                 ("JOIN", Printf.sprintf "m%d_req" k);
               wf (Printf.sprintf "w_m%d_gnt" k) 1
                 ("JOIN", Printf.sprintf "m%d_gnt" k)
                 ("BANG", Printf.sprintf "m%d_gnt" k);
             ]))
  in
  let arb_wires =
    [
      wf "w_jreq" masters ("JOIN", "req") ("ABI", "bus_req");
      wf "w_areq" masters ("ABI", "arb_req") ("ARB", "req");
      wf "w_agnt" masters ("ARB", "grant") ("ABI", "arb_grant");
      wf "w_jgnt" masters ("ABI", "bus_gnt") ("JOIN", "gnt");
    ]
  in
  let slave_wires =
    if with_dct then
      (* Join -> address decode -> {global memory, DCT accelerator}. *)
      [
        wf "w_js_sel" 1 ("JOIN", "s_sel") ("DEMUX", "m_sel");
        wf "w_js_rnw" 1 ("JOIN", "s_rnw") ("DEMUX", "m_rnw");
        wf "w_js_addr" aw ("JOIN", "s_addr") ("DEMUX", "m_addr");
        wf "w_js_wdata" dw ("JOIN", "s_wdata") ("DEMUX", "m_wdata");
        wf "w_js_rdata" dw ("DEMUX", "m_rdata") ("JOIN", "s_rdata");
        wf "w_js_ack" 1 ("DEMUX", "m_ack") ("JOIN", "s_ack");
      ]
      @ bus_link ~tag:"w_gm" ~aw ~dw ("DEMUX", f_mux_slave 0) ("MBI", f_plain)
      @ bus_link ~tag:"w_dct" ~aw ~dw ~addr_bits:5
          ("DEMUX", f_mux_slave 1) ("DCT", f_plain)
    else
      [
        wf "w_js_sel" 1 ("JOIN", "s_sel") ("MBI", "sel");
        wf "w_js_rnw" 1 ("JOIN", "s_rnw") ("MBI", "rnw");
        wf "w_js_addr" aw ("JOIN", "s_addr") ("MBI", "addr");
        wf "w_js_wdata" dw ("JOIN", "s_wdata") ("MBI", "wdata");
        wf "w_js_rdata" dw ("MBI", "rdata") ("JOIN", "s_rdata");
        wf "w_js_ack" 1 ("MBI", "ack") ("JOIN", "s_ack");
      ]
  in
  let wires =
    master_wires @ arb_wires @ slave_wires
    @ mem_wires ~tag:"w_mem" ~maw:gmaw ~mdw:dw ("MBI", "MEM")
    @ (if c.protect then
         protect_wires c ~boundary:"BANG" ~sel:("JOIN", "s_sel")
           ~ack:(if with_dct then ("DEMUX", "m_ack") else ("MBI", "ack"))
           ~data:("JOIN", "s_wdata")
       else [])
  in
  let entry = { Spec.lib_name = "ban_global"; wires } in
  let circuit, info =
    Netlist.build
      ~name:
        (Printf.sprintf "ban_global_m%d%s" masters
           (if with_dct then "_dct" else ""))
      ~boundary:"BANG" ~elements ~entry ()
  in
  (circuit, entry, info)

(* A BAN's global-bus connection routed through an explicit Segment of
   Bus instance, so generated netlists carry the SB modules of the
   paper's figures (Fig. 2: each BAN reaches the bus through an SB). *)
let sb_global_link c ~k ~ban ~hub =
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let sbn = Printf.sprintf "SB_%d" k in
  let element =
    el sbn
      (M.Catalog.Spec_sb
         { M.Sb.bus_type = M.Sb.Sb_gbaviii; addr_width = aw; data_width = dw })
  in
  let t n = Printf.sprintf "w_sb%d_%s" k n in
  let mk p = Printf.sprintf "m%d_%s" k p in
  let wires =
    [
      wf (t "sel_a") 1 (ban, "g_sel") (sbn, "sel_in");
      wf (t "sel_b") 1 (sbn, "sel_out") (hub, mk "sel");
      wf (t "rnw_a") 1 (ban, "g_rnw") (sbn, "rnw_in");
      wf (t "rnw_b") 1 (sbn, "rnw_out") (hub, mk "rnw");
      wf (t "addr_a") aw (ban, "g_addr") (sbn, "addr_in");
      wf (t "addr_b") aw (sbn, "addr_out") (hub, mk "addr");
      wf (t "wdata_a") dw (ban, "g_wdata") (sbn, "wdata_in");
      wf (t "wdata_b") dw (sbn, "wdata_out") (hub, mk "wdata");
      wf (t "rdata_a") dw (hub, mk "rdata") (sbn, "rdata_in");
      wf (t "rdata_b") dw (sbn, "rdata_out") (ban, "g_rdata");
      wf (t "ack_a") 1 (hub, mk "ack") (sbn, "ack_in");
      wf (t "ack_b") 1 (sbn, "ack_out") (ban, "g_ack");
      (* The request line to the arbiter follows the select. *)
      wf (t "req") 1 (sbn, "sel_out") (hub, mk "req");
    ]
  in
  (element, wires)

(* ------------------------------------------------------------------ *)
(* Subsystem / system assembly                                         *)
(* ------------------------------------------------------------------ *)

let ban_names n = List.init n (fun k -> Printf.sprintf "BAN_%d" k)

(* Export every PE socket of [bans] at the system boundary. *)
let cpu_exports ~aw ~dw ?(irq = false) names =
  List.concat
    (List.mapi
       (fun k bn ->
         let p s = Printf.sprintf "cpu%d_%s" k s in
         [
           wf (p "req" ^ "_w") 1 ("SYS", p "req") (bn, "cpu_req");
           wf (p "rnw" ^ "_w") 1 ("SYS", p "rnw") (bn, "cpu_rnw");
           wf (p "addr" ^ "_w") aw ("SYS", p "addr") (bn, "cpu_addr");
           wf (p "wdata" ^ "_w") dw ("SYS", p "wdata") (bn, "cpu_wdata");
           wf (p "rdata" ^ "_w") dw (bn, "cpu_rdata") ("SYS", p "rdata");
           wf (p "ack" ^ "_w") 1 (bn, "cpu_ack") ("SYS", p "ack");
         ]
         @
         if irq then [ wf (p "irq" ^ "_w") 1 (bn, "cpu_irq") ("SYS", p "irq") ]
         else [])
       names)

(* Ring links: BAN_k.dn* -> BAN_{k+1}.up* for every signal of a master
   bundle (requests forward, responses backward). *)
let ring_links ~aw ~dw ~members ~fwd ~bwd =
  [
    wg ("w_" ^ fwd ^ "_sel") 1 ~members (fwd ^ "_sel") (bwd ^ "_sel");
    wg ("w_" ^ fwd ^ "_rnw") 1 ~members (fwd ^ "_rnw") (bwd ^ "_rnw");
    wg ("w_" ^ fwd ^ "_addr") aw ~members (fwd ^ "_addr") (bwd ^ "_addr");
    wg ("w_" ^ fwd ^ "_wdata") dw ~members (fwd ^ "_wdata") (bwd ^ "_wdata");
    wg ("w_" ^ fwd ^ "_rdata") dw ~members (fwd ^ "_rdata") (bwd ^ "_rdata");
    wg ("w_" ^ fwd ^ "_ack") 1 ~members (fwd ^ "_ack") (bwd ^ "_ack");
  ]

let bfba_like c ~with_global ~arch_name =
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let ban, ban_entry, ban_info = ban_bfba c ~with_global in
  let names = ban_names c.n_pes in
  let elements =
    List.map (fun n -> { Netlist.el_name = n; el_circuit = ban }) names
  in
  let elements, global_wires, extra_entries, extra_infos =
    if with_global then begin
      let bang, bang_entry, bang_info = ban_global c ~masters:c.n_pes in
      let sbs, gw =
        List.split
          (List.mapi
             (fun k bn -> sb_global_link c ~k ~ban:bn ~hub:"GMEM")
             names)
      in
      ( elements @ sbs @ [ { Netlist.el_name = "GMEM"; el_circuit = bang } ],
        List.concat gw,
        [ bang_entry ],
        [ ("ban_global", bang_info) ] )
    end
    else (elements, [], [], [])
  in
  let wires =
    cpu_exports ~aw ~dw ~irq:true names
    @ ring_links ~aw ~dw ~members:names ~fwd:"dn" ~bwd:"up"
    @ global_wires
  in
  let entry = { Spec.lib_name = arch_name ^ "_subsys"; wires } in
  let top, info =
    Netlist.build ~name:("sys_" ^ arch_name) ~boundary:"SYS" ~elements ~entry ()
  in
  {
    top;
    entries = [ ban_entry ] @ extra_entries @ [ entry ];
    infos =
      [ ((if with_global then "ban_hybrid" else "ban_bfba"), ban_info) ]
      @ extra_infos
      @ [ (arch_name ^ "_subsys", info) ];
  }

(* Only BFBA carries the FFT BAN's dedicated wires (Example 8). *)
let reject_fft name c =
  if c.accelerator = Acc_fft then
    invalid_arg
      (Printf.sprintf
         "Archs.%s: the FFT BAN attaches over BFBA's dedicated wires \
          (paper Example 8); use the bfba architecture" name)

let bfba_plain c = bfba_like c ~with_global:false ~arch_name:"bfba"

let hybrid c =
  reject_fft "hybrid" c;
  bfba_like c ~with_global:true ~arch_name:"hybrid"

(* Paper Example 8 / Fig. 17: a BFBA chain where BAN B additionally
   drives a hardware FFT BAN over dedicated w_fft wires. *)
let bfba_with_fft c =
  if c.n_pes < 2 then
    invalid_arg "Archs.bfba_with_fft: Example 8 needs at least BANs A and B";
  if c.bus_data_width < 32 then
    invalid_arg "Archs.bfba_with_fft: complex samples need a 32-bit bus";
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let plain, ban_entry, ban_info = ban_bfba c ~with_global:false in
  let fft_ban, fft_ban_entry, fft_ban_info =
    ban_bfba ~with_fft:true c ~with_global:false
  in
  let names = ban_names c.n_pes in
  let elements =
    List.mapi
      (fun k n ->
        { Netlist.el_name = n;
          el_circuit = (if k = 1 then fft_ban else plain) })
      names
    @ [
        { Netlist.el_name = "BAN_FFT";
          el_circuit = M.Catalog.create (M.Catalog.Spec_fft { M.Fft_ip.data_width = dw }) };
      ]
  in
  let ban_b = List.nth names 1 in
  let wires =
    cpu_exports ~aw ~dw ~irq:true names
    @ ring_links ~aw ~dw ~members:names ~fwd:"dn" ~bwd:"up"
    @ [
        (* The exact wire names of paper Example 8. *)
        wf "w_fft_ad" 12 (ban_b, "addr_b") ("BAN_FFT", "addr_fft");
        wf "w_fft_data" dw (ban_b, "data_b") ("BAN_FFT", "data_fft");
        wf "w_fft_reb" 1 (ban_b, "reb_b") ("BAN_FFT", "reb_fft");
        wf "w_fft_web" 1 (ban_b, "web_b") ("BAN_FFT", "web_fft");
        wf "w_fft_srt" 1 (ban_b, "srt_b") ("BAN_FFT", "srt_fft");
        wf "w_fft_ack" 1 ("BAN_FFT", "ack_fft") (ban_b, "ack_b");
        wf "w_fft_q" dw ("BAN_FFT", "q_fft") (ban_b, "q_b");
      ]
  in
  let entry = { Spec.lib_name = "bfba_fft_subsys"; wires } in
  let top, info =
    Netlist.build ~name:"sys_bfba_fft" ~boundary:"SYS" ~elements ~entry ()
  in
  {
    top;
    entries = [ ban_entry; fft_ban_entry; entry ];
    infos =
      [ ("ban_bfba", ban_info); ("ban_bfba_fft", fft_ban_info);
        ("bfba_fft_subsys", info) ];
  }

let gbavi_like c ~with_global ~arch_name =
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let ban, ban_entry, ban_info = ban_gbavi_like c ~with_global in
  let names = ban_names c.n_pes in
  let elements =
    List.map (fun n -> { Netlist.el_name = n; el_circuit = ban }) names
  in
  let elements, global_wires, extra_entries, extra_infos =
    if with_global then begin
      let bang, bang_entry, bang_info = ban_global c ~masters:c.n_pes in
      let sbs, gw =
        List.split
          (List.mapi
             (fun k bn -> sb_global_link c ~k ~ban:bn ~hub:"GMEM")
             names)
      in
      ( elements @ sbs @ [ { Netlist.el_name = "GMEM"; el_circuit = bang } ],
        List.concat gw,
        [ bang_entry ],
        [ ("ban_global", bang_info) ] )
    end
    else (elements, [], [], [])
  in
  let wires =
    cpu_exports ~aw ~dw names
    @ ring_links ~aw ~dw ~members:names ~fwd:"dnhs" ~bwd:"prevhs"
    @ ring_links ~aw ~dw ~members:names ~fwd:"nextmem" ~bwd:"upmem"
    @ global_wires
  in
  (* nextmem is an inbound (slave) bundle: the ring helper pairs
     member k's first port with member k+1's second port, so listing
     (nextmem, upmem) wires BAN_k.nextmem <- BAN_{k+1}.upmem: BAN k+1
     reads BAN k's memory, the paper's "receiver reads the sender's
     SRAM". *)
  let entry = { Spec.lib_name = arch_name ^ "_subsys"; wires } in
  let top, info =
    Netlist.build ~name:("sys_" ^ arch_name) ~boundary:"SYS" ~elements ~entry ()
  in
  {
    top;
    entries = [ ban_entry ] @ extra_entries @ [ entry ];
    infos =
      [ ((if with_global then "ban_gbavii" else "ban_gbavi"), ban_info) ]
      @ extra_infos
      @ [ (arch_name ^ "_subsys", info) ];
  }

let bfba c =
  if c.accelerator = Acc_fft then bfba_with_fft c else bfba_plain c

let gbavi c =
  reject_fft "gbavi" c;
  gbavi_like c ~with_global:false ~arch_name:"gbavi"

let gbavii c =
  reject_fft "gbavii" c;
  gbavi_like c ~with_global:true ~arch_name:"gbavii"

let gbaviii c =
  reject_fft "gbaviii" c;
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let ban, ban_entry, ban_info = ban_gbaviii c in
  let bang, bang_entry, bang_info = ban_global c ~masters:c.n_pes in
  let names = ban_names c.n_pes in
  let elements =
    List.map (fun n -> { Netlist.el_name = n; el_circuit = ban }) names
    @ [ { Netlist.el_name = "GMEM"; el_circuit = bang } ]
  in
  let sbs, global_wires =
    List.split
      (List.mapi (fun k bn -> sb_global_link c ~k ~ban:bn ~hub:"GMEM") names)
  in
  let elements = elements @ sbs in
  let wires = cpu_exports ~aw ~dw names @ List.concat global_wires in
  let entry = { Spec.lib_name = "gbaviii_subsys"; wires } in
  let top, info =
    Netlist.build ~name:"sys_gbaviii" ~boundary:"SYS" ~elements ~entry ()
  in
  {
    top;
    entries = [ ban_entry; bang_entry; entry ];
    infos =
      [ ("ban_gbaviii", ban_info); ("ban_global", bang_info);
        ("gbaviii_subsys", info) ];
  }

let ggba c =
  reject_fft "ggba" c;
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let ban, ban_entry, ban_info = ban_cbionly c in
  let bang, bang_entry, bang_info = ban_global c ~masters:c.n_pes in
  let names = ban_names c.n_pes in
  let elements =
    List.map (fun n -> { Netlist.el_name = n; el_circuit = ban }) names
    @ [ { Netlist.el_name = "GMEM"; el_circuit = bang } ]
  in
  let wires =
    cpu_exports ~aw ~dw names
    @ List.concat
        (List.mapi
           (fun k bn ->
             bus_link ~tag:(Printf.sprintf "w_gl%d" k) ~aw ~dw (bn, f_pre "g")
               ("GMEM", f_pre (Printf.sprintf "m%d" k))
             @ [
                 wf (Printf.sprintf "w_gl%d_req" k) 1 (bn, "g_req")
                   ("GMEM", Printf.sprintf "m%d_req" k);
                 wf (Printf.sprintf "w_gl%d_gnt" k) 1
                   ("GMEM", Printf.sprintf "m%d_gnt" k)
                   (bn, "g_gnt");
               ])
           names)
  in
  let entry = { Spec.lib_name = "ggba_subsys"; wires } in
  let top, info =
    Netlist.build ~name:"sys_ggba" ~boundary:"SYS" ~elements ~entry ()
  in
  {
    top;
    entries = [ ban_entry; bang_entry; entry ];
    infos =
      [ ("ban_cbionly", ban_info); ("ban_global", bang_info);
        ("ggba_subsys", info) ];
  }

(* SplitBA subsystem hub: join + arbiter + decode onto {own memory,
   bridge window to the other subsystem}. *)
let splitba_hub c ~masters ~ss_index ~n_ss =
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let gmaw = c.global_mem_addr_width in
  let own_base = Addrmap.splitba_subsystem_base ss_index in
  (* One decode window per peer subsystem, each forwarded over its own
     bridge (a full mesh keeps every region a single power-of-two
     window; for the paper's two subsystems this is exactly the one
     outbound bridge of Fig. 7). *)
  let others =
    List.filter (fun j -> j <> ss_index) (List.init n_ss (fun j -> j))
  in
  let elements =
    [
      el "JOIN"
        (M.Catalog.Spec_busjoin
           { M.Busjoin.masters; addr_width = aw; data_width = dw });
      el "ABI" (M.Catalog.Spec_abi { M.Abi.masters });
      el "ARB"
        (M.Catalog.Spec_arbiter { M.Arbiter.policy = c.arb_policy; masters });
      el "DEMUX"
        (M.Catalog.Spec_busmux
           {
             M.Busmux.addr_width = aw;
             data_width = dw;
             regions =
               { M.Busmux.base = own_base; size = 1 lsl gmaw }
               :: List.map
                    (fun j ->
                      {
                        M.Busmux.base = Addrmap.splitba_subsystem_base j;
                        size = 1 lsl gmaw;
                      })
                    others;
           });
      el "MBI" (M.Catalog.Spec_mbi (mbi_params c ~maw:gmaw));
      el "MEM" (M.Catalog.Spec_sram (sram_params c ~maw:gmaw));
    ]
    @ (if c.protect then protect_elements c else [])
  in
  (* Region order in DEMUX follows region base order as given. *)
  let own_region = 0 in
  let master_wires =
    List.concat
      (List.init masters (fun k ->
           bus_link ~tag:(Printf.sprintf "w_m%d" k) ~aw ~dw
             ("HUB", f_pre (Printf.sprintf "m%d" k))
             ("JOIN", f_join_master k)
           @ [
               wf (Printf.sprintf "w_m%d_req" k) 1
                 ("HUB", Printf.sprintf "m%d_req" k)
                 ("JOIN", Printf.sprintf "m%d_req" k);
               wf (Printf.sprintf "w_m%d_gnt" k) 1
                 ("JOIN", Printf.sprintf "m%d_gnt" k)
                 ("HUB", Printf.sprintf "m%d_gnt" k);
             ]))
  in
  let wires =
    master_wires
    @ [
        wf "w_jreq" masters ("JOIN", "req") ("ABI", "bus_req");
        wf "w_areq" masters ("ABI", "arb_req") ("ARB", "req");
        wf "w_agnt" masters ("ARB", "grant") ("ABI", "arb_grant");
        wf "w_jgnt" masters ("ABI", "bus_gnt") ("JOIN", "gnt");
        (* Join slave side -> address decode. *)
        wf "w_js_sel" 1 ("JOIN", "s_sel") ("DEMUX", "m_sel");
        wf "w_js_rnw" 1 ("JOIN", "s_rnw") ("DEMUX", "m_rnw");
        wf "w_js_addr" aw ("JOIN", "s_addr") ("DEMUX", "m_addr");
        wf "w_js_wdata" dw ("JOIN", "s_wdata") ("DEMUX", "m_wdata");
        wf "w_js_rdata" dw ("DEMUX", "m_rdata") ("JOIN", "s_rdata");
        wf "w_js_ack" 1 ("DEMUX", "m_ack") ("JOIN", "s_ack");
      ]
    @ bus_link ~tag:"w_own" ~aw ~dw
        ("DEMUX", f_mux_slave own_region)
        ("MBI", f_plain)
    @ mem_wires ~tag:"w_sm" ~maw:gmaw ~mdw:dw ("MBI", "MEM")
    (* One exported bridge window per peer subsystem. *)
    @ List.concat
        (List.mapi
           (fun rank j ->
             bus_link
               ~tag:(Printf.sprintf "w_outb%d" j)
               ~aw ~dw
               ("DEMUX", f_mux_slave (1 + rank))
               ("HUB", f_pre (Printf.sprintf "outb%d" j)))
           others)
    @ (if c.protect then
         protect_wires c ~boundary:"HUB" ~sel:("JOIN", "s_sel")
           ~ack:("DEMUX", "m_ack") ~data:("JOIN", "s_wdata")
       else [])
  in
  let entry = { Spec.lib_name = Printf.sprintf "splitba_hub%d" ss_index; wires } in
  let circuit, info =
    Netlist.build
      ~name:(Printf.sprintf "splitba_hub%d_m%d_s%d" ss_index masters n_ss)
      ~boundary:"HUB" ~elements ~entry ()
  in
  (circuit, entry, info)

let splitba_n ?n_ss c =
  let n_ss = match n_ss with Some n -> n | None -> c.n_subsystems in
  reject_fft "splitba" c;
  if n_ss < 2 then invalid_arg "Archs.splitba: need at least 2 subsystems";
  if c.n_pes < n_ss || c.n_pes mod n_ss <> 0 then
    invalid_arg
      (Printf.sprintf
         "Archs.splitba: n_pes must be a positive multiple of the %d \
          subsystems"
         n_ss);
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let per_ss = c.n_pes / n_ss in
  let ban, ban_entry, ban_info = ban_cbionly c in
  (* Each hub serves its CPUs plus one inbound bridge per peer
     subsystem (a full bridge mesh; for the paper's two subsystems this
     is exactly the single BB pair of Fig. 7). *)
  let masters = per_ss + (n_ss - 1) in
  let hubs =
    List.init n_ss (fun i -> splitba_hub c ~masters ~ss_index:i ~n_ss)
  in
  let names = ban_names c.n_pes in
  let bb =
    M.Catalog.create
      (M.Catalog.Spec_bb
         { M.Bb.bb_type = M.Bb.Splitba; addr_width = aw; data_width = dw })
  in
  let hub_name i = Printf.sprintf "HUB_%d" i in
  let bb_name i j = Printf.sprintf "BB_%d%d" i j in
  let pairs =
    List.concat
      (List.init n_ss (fun i ->
           List.filter_map
             (fun j -> if j <> i then Some (i, j) else None)
             (List.init n_ss (fun j -> j))))
  in
  let elements =
    List.map (fun n -> { Netlist.el_name = n; el_circuit = ban }) names
    @ List.mapi
        (fun i (hub, _, _) ->
          { Netlist.el_name = hub_name i; el_circuit = hub })
        hubs
    @ List.map
        (fun (i, j) ->
          { Netlist.el_name = bb_name i j; el_circuit = bb })
        pairs
  in
  (* CPU k lives in subsystem k / per_ss, as master k mod per_ss. *)
  let cpu_to_hub =
    List.concat
      (List.mapi
         (fun k bn ->
           let hub = hub_name (k / per_ss) in
           let m = k mod per_ss in
           bus_link ~tag:(Printf.sprintf "w_gl%d" k) ~aw ~dw (bn, f_pre "g")
             (hub, f_pre (Printf.sprintf "m%d" m))
           @ [
               wf (Printf.sprintf "w_gl%d_req" k) 1 (bn, "g_req")
                 (hub, Printf.sprintf "m%d_req" m);
               wf (Printf.sprintf "w_gl%d_gnt" k) 1
                 (hub, Printf.sprintf "m%d_gnt" m)
                 (bn, "g_gnt");
             ])
         names)
  in
  (* Bridges: HUB_i.outb<j> -> BB_ij -> HUB_j's inbound master for i.
     Hub j's masters are its CPUs (0..per_ss-1) followed by one
     inbound bridge per peer, in increasing peer order. *)
  let inbound_master ~at ~from =
    let rank =
      List.length (List.filter (fun j -> j <> at && j < from)
                     (List.init n_ss (fun j -> j)))
    in
    per_ss + rank
  in
  let bridge (i, j) =
    let bb = bb_name i j in
    let m = inbound_master ~at:j ~from:i in
    bus_link ~tag:("w_" ^ bb ^ "_a") ~aw ~dw
      (hub_name i, f_pre (Printf.sprintf "outb%d" j))
      (bb, f_pre "a")
    @ bus_link ~tag:("w_" ^ bb ^ "_b") ~aw ~dw (bb, f_pre "b")
        (hub_name j, f_pre (Printf.sprintf "m%d" m))
    @ [
        wf ("w_" ^ bb ^ "_req") 1 (bb, "b_sel")
          (hub_name j, Printf.sprintf "m%d_req" m);
      ]
  in
  let wires =
    cpu_exports ~aw ~dw names
    @ cpu_to_hub
    @ List.concat_map bridge pairs
  in
  let ties =
    List.map (fun (i, j) -> (bb_name i j, "enable", Bits.of_bool true)) pairs
  in
  let entry = { Spec.lib_name = "splitba_sys"; wires } in
  let top, info =
    Netlist.build ~name:"sys_splitba" ~boundary:"SYS" ~elements ~entry ~ties ()
  in
  {
    top;
    entries =
      (ban_entry :: List.map (fun (_, e, _) -> e) hubs) @ [ entry ];
    infos =
      (("ban_cbionly", ban_info)
      :: List.mapi
           (fun i (_, _, inf) -> (Printf.sprintf "splitba_hub%d" i, inf))
           hubs)
      @ [ ("splitba_sys", info) ];
  }

let splitba c = splitba_n c

(* CCBA: hand-designed CoreConnect-like baseline (Fig. 8): shared bus,
   per-processor SRAMs plus a global SRAM as slaves, priority arbiter,
   and a two-stage ABI pipeline for the slower (5-cycle) arbitration. *)
let ccba c =
  reject_fft "ccba" c;
  let aw = c.bus_addr_width and dw = c.bus_data_width in
  let maw = c.mem_addr_width in
  let gmaw = c.global_mem_addr_width in
  let n = c.n_pes in
  let ban, ban_entry, ban_info = ban_cbionly c in
  let names = ban_names n in
  let regions =
    List.init n (fun k ->
        { M.Busmux.base = Addrmap.ccba_local_base k; size = 1 lsl maw })
    (* The global SRAM sits one bank past the last processor's SRAM. *)
    @ [ { M.Busmux.base = Addrmap.ccba_local_base n; size = 1 lsl gmaw } ]
  in
  let elements =
    List.map (fun bn -> { Netlist.el_name = bn; el_circuit = ban }) names
    @ [
        el "JOIN"
          (M.Catalog.Spec_busjoin
             { M.Busjoin.masters = n; addr_width = aw; data_width = dw });
        el "ABI1" (M.Catalog.Spec_abi { M.Abi.masters = n });
        el "ABI2" (M.Catalog.Spec_abi { M.Abi.masters = n });
        el "ARB"
          (M.Catalog.Spec_arbiter
             { M.Arbiter.policy = M.Arbiter.Priority; masters = n });
        el "DEMUX"
          (M.Catalog.Spec_busmux
             { M.Busmux.addr_width = aw; data_width = dw; regions });
      ]
    @ List.concat
        (List.init n (fun k ->
             [
               el (Printf.sprintf "MBI_%d" k) (M.Catalog.Spec_mbi (mbi_params c ~maw));
               el (Printf.sprintf "MEM_%d" k) (M.Catalog.Spec_sram (sram_params c ~maw));
             ]))
    @ [
        el "MBI_G" (M.Catalog.Spec_mbi (mbi_params c ~maw:gmaw));
        el "MEM_G" (M.Catalog.Spec_sram (sram_params c ~maw:gmaw));
      ]
    @ (if c.protect then protect_elements c else [])
  in
  let wires =
    cpu_exports ~aw ~dw names
    @ List.concat
        (List.mapi
           (fun k bn ->
             bus_link ~tag:(Printf.sprintf "w_gl%d" k) ~aw ~dw (bn, f_pre "g")
               ("JOIN", f_join_master k)
             @ [
                 wf (Printf.sprintf "w_gl%d_req" k) 1 (bn, "g_req")
                   ("JOIN", Printf.sprintf "m%d_req" k);
                 wf (Printf.sprintf "w_gl%d_gnt" k) 1
                   ("JOIN", Printf.sprintf "m%d_gnt" k)
                   (bn, "g_gnt");
               ])
           names)
    @ [
        (* Two ABI pipeline stages between join and arbiter. *)
        wf "w_jreq" n ("JOIN", "req") ("ABI1", "bus_req");
        wf "w_q1" n ("ABI1", "arb_req") ("ABI2", "bus_req");
        wf "w_q2" n ("ABI2", "arb_req") ("ARB", "req");
        wf "w_g2" n ("ARB", "grant") ("ABI2", "arb_grant");
        wf "w_g1" n ("ABI2", "bus_gnt") ("ABI1", "arb_grant");
        wf "w_jgnt" n ("ABI1", "bus_gnt") ("JOIN", "gnt");
        wf "w_js_sel" 1 ("JOIN", "s_sel") ("DEMUX", "m_sel");
        wf "w_js_rnw" 1 ("JOIN", "s_rnw") ("DEMUX", "m_rnw");
        wf "w_js_addr" aw ("JOIN", "s_addr") ("DEMUX", "m_addr");
        wf "w_js_wdata" dw ("JOIN", "s_wdata") ("DEMUX", "m_wdata");
        wf "w_js_rdata" dw ("DEMUX", "m_rdata") ("JOIN", "s_rdata");
        wf "w_js_ack" 1 ("DEMUX", "m_ack") ("JOIN", "s_ack");
      ]
    @ List.concat
        (List.init n (fun k ->
             bus_link ~tag:(Printf.sprintf "w_sl%d" k) ~aw ~dw
               ("DEMUX", f_mux_slave k)
               (Printf.sprintf "MBI_%d" k, f_plain)
             @ mem_wires ~tag:(Printf.sprintf "w_lm%d" k) ~maw ~mdw:dw
                 (Printf.sprintf "MBI_%d" k, Printf.sprintf "MEM_%d" k)))
    @ bus_link ~tag:"w_slg" ~aw ~dw ("DEMUX", f_mux_slave n) ("MBI_G", f_plain)
    @ mem_wires ~tag:"w_gm" ~maw:gmaw ~mdw:dw ("MBI_G", "MEM_G")
    @ (if c.protect then
         protect_wires c ~boundary:"SYS" ~sel:("JOIN", "s_sel")
           ~ack:("DEMUX", "m_ack") ~data:("JOIN", "s_wdata")
       else [])
  in
  let entry = { Spec.lib_name = "ccba_sys"; wires } in
  let top, info =
    Netlist.build ~name:"sys_ccba" ~boundary:"SYS" ~elements ~entry ()
  in
  {
    top;
    entries = [ ban_entry; entry ];
    infos = [ ("ban_cbionly", ban_info); ("ccba_sys", info) ];
  }
