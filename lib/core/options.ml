type bus_type = Gbavi | Gbaviii | Bfba | Splitba

type cpu_type = Cpu_mpc750 | Cpu_mpc755 | Cpu_mpc7410 | Cpu_arm9tdmi

type non_cpu_type = Dct | Fft | Mpeg2_decoder

type memory_type = Mem_sram | Mem_dram | Mem_dpram | Mem_fifo

type memory_prop = {
  mem_type : memory_type;
  mem_addr_width : int;
  mem_data_width : int;
}

type ban_prop = {
  cpu : cpu_type option;
  non_cpu : non_cpu_type option;
  memories : memory_prop list;
}

type bus_prop = {
  bus : bus_type;
  bus_addr_width : int;
  bus_data_width : int;
  bififo_depth : int option;
}

type subsystem_prop = { buses : bus_prop list; bans : ban_prop list }

type t = { subsystems : subsystem_prop list; protection : bool }

let bus_type_name = function
  | Gbavi -> "GBAVI"
  | Gbaviii -> "GBAVIII"
  | Bfba -> "BFBA"
  | Splitba -> "SplitBA"

let cpu_type_name = function
  | Cpu_mpc750 -> "MPC750"
  | Cpu_mpc755 -> "MPC755"
  | Cpu_mpc7410 -> "MPC7410"
  | Cpu_arm9tdmi -> "ARM9TDMI"

let memory_type_name = function
  | Mem_sram -> "SRAM"
  | Mem_dram -> "DRAM"
  | Mem_dpram -> "DPRAM"
  | Mem_fifo -> "FIFO"

let cpu_to_modlib = function
  | Cpu_mpc750 -> Busgen_modlib.Cbi.Mpc750
  | Cpu_mpc755 -> Busgen_modlib.Cbi.Mpc755
  | Cpu_mpc7410 -> Busgen_modlib.Cbi.Mpc7410
  | Cpu_arm9tdmi -> Busgen_modlib.Cbi.Arm9tdmi

let default_mpc755_ban mem =
  { cpu = Some Cpu_mpc755; non_cpu = None; memories = [ mem ] }

let paper_sram_8mb =
  { mem_type = Mem_sram; mem_addr_width = 20; mem_data_width = 64 }

let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if t.subsystems = [] then err "a Bus System needs at least one Bus Subsystem";
  List.iteri
    (fun si ss ->
      let where = Printf.sprintf "subsystem %d" si in
      if ss.bans = [] then err "%s: needs at least one BAN" where;
      (match List.length ss.buses with
      | 0 -> err "%s: needs at least one bus" where
      | 1 | 2 -> ()
      | n -> err "%s: at most two buses are supported, got %d" where n);
      List.iteri
        (fun bi bus ->
          let bwhere = Printf.sprintf "%s bus %d (%s)" where bi
              (bus_type_name bus.bus)
          in
          if bus.bus_addr_width < 8 || bus.bus_addr_width > 64 then
            err "%s: address width %d out of [8, 64]" bwhere bus.bus_addr_width;
          if bus.bus_data_width < 8 || bus.bus_data_width > 128 then
            err "%s: data width %d out of [8, 128]" bwhere bus.bus_data_width;
          match (bus.bus, bus.bififo_depth) with
          | Bfba, None -> err "%s: BFBA requires a Bi-FIFO depth" bwhere
          | Bfba, Some d when d < 2 ->
              err "%s: Bi-FIFO depth %d < 2" bwhere d
          | Bfba, Some _ -> ()
          | (Gbavi | Gbaviii | Splitba), Some _ ->
              err "%s: Bi-FIFO depth only applies to BFBA" bwhere
          | (Gbavi | Gbaviii | Splitba), None -> ())
        ss.buses;
      List.iteri
        (fun bani ban ->
          let bwhere = Printf.sprintf "%s BAN %d" where bani in
          (match (ban.cpu, ban.non_cpu) with
          | Some _, Some _ ->
              err "%s: a BAN has a CPU or a non-CPU function, not both" bwhere
          | Some _, None | None, Some _ | None, None -> ());
          if ban.cpu = None && ban.non_cpu = None && ban.memories = [] then
            err "%s: empty BAN (no CPU, no function, no memory)" bwhere;
          List.iteri
            (fun mi m ->
              let mwhere = Printf.sprintf "%s memory %d" bwhere mi in
              if m.mem_addr_width < 1 || m.mem_addr_width > 20 then
                err "%s: memory address width %d out of [1, 20]" mwhere
                  m.mem_addr_width;
              let max_bus_data =
                List.fold_left
                  (fun acc bus -> max acc bus.bus_data_width)
                  0 ss.buses
              in
              if m.mem_data_width > max_bus_data then
                err "%s: memory data width %d exceeds every bus width" mwhere
                  m.mem_data_width)
            ban.memories)
        ss.bans)
    t.subsystems;
  match List.rev !errors with [] -> Ok () | es -> Error es

let pp fmt t =
  Format.fprintf fmt "1. Bus System: %d subsystem(s)%s@."
    (List.length t.subsystems)
    (if t.protection then ", error protection ON" else "");
  List.iteri
    (fun si ss ->
      Format.fprintf fmt "2. Subsystem %d: %d BAN(s), %d bus(es)@." si
        (List.length ss.bans) (List.length ss.buses);
      List.iter
        (fun bus ->
          Format.fprintf fmt "   3. Bus %s: addr %d, data %d%s@."
            (bus_type_name bus.bus) bus.bus_addr_width bus.bus_data_width
            (match bus.bififo_depth with
            | Some d -> Printf.sprintf ", Bi-FIFO depth %d" d
            | None -> ""))
        ss.buses;
      List.iteri
        (fun bani ban ->
          Format.fprintf fmt "   4. BAN %d: CPU %s, %d memory(ies)@." bani
            (match ban.cpu with
            | Some c -> cpu_type_name c
            | None -> (
                match ban.non_cpu with
                | Some Dct -> "non-CPU DCT"
                | Some Fft -> "non-CPU FFT"
                | Some Mpeg2_decoder -> "non-CPU MPEG2"
                | None -> "NONE"))
            (List.length ban.memories);
          List.iter
            (fun m ->
              Format.fprintf fmt "      5. Memory %s: addr %d, data %d@."
                (memory_type_name m.mem_type) m.mem_addr_width
                m.mem_data_width)
            ban.memories)
        ss.bans)
    t.subsystems

(* ------------------------------------------------------------------ *)
(* Deterministic sampling (fuzzing support)                            *)
(* ------------------------------------------------------------------ *)

let sample ~seed =
  let state = ref (seed land 0x3FFFFFFF) in
  let rand bound =
    state := (!state * 1664525) + 1013904223;
    state := !state land 0x3FFFFFFF;
    !state mod bound
  in
  let pick l = List.nth l (rand (List.length l)) in
  (* 16-bit addressing cannot reach the 0x200000+ windows most
     architectures decode; keep it rare, as a generation-error probe. *)
  let addr_width = pick [ 24; 24; 32; 32; 16 ] in
  let data_width = pick [ 8; 16; 32 ] in
  let mem aw =
    {
      mem_type = pick [ Mem_sram; Mem_sram; Mem_dram; Mem_dpram ];
      mem_addr_width = aw;
      mem_data_width = data_width;
    }
  in
  let cpu_ban () =
    {
      cpu = Some (pick [ Cpu_mpc750; Cpu_mpc755; Cpu_mpc7410; Cpu_arm9tdmi ]);
      non_cpu = None;
      memories = [ mem (pick [ 6; 8 ]) ];
    }
  in
  let bus ?depth ty =
    {
      bus = ty;
      bus_addr_width = addr_width;
      bus_data_width = data_width;
      bififo_depth = depth;
    }
  in
  let bans n = List.init n (fun _ -> cpu_ban ()) in
  let depth = pick [ 2; 4; 8 ] in
  let t =
    match rand 6 with
    | 0 ->
        { subsystems =
            [ { buses = [ bus ~depth Bfba ]; bans = bans (2 + rand 3) } ];
          protection = rand 2 = 0 }
    | 1 ->
        { subsystems = [ { buses = [ bus Gbavi ]; bans = bans (2 + rand 3) } ];
          protection = rand 2 = 0 }
    | 2 ->
        { subsystems =
            [ { buses = [ bus Gbaviii ]; bans = bans (2 + rand 3) } ];
          protection = rand 2 = 0 }
    | 3 ->
        (* Hybrid (Example 10): BFBA + GBAVIII in one subsystem. *)
        { subsystems =
            [ { buses = [ bus ~depth Bfba; bus Gbaviii ];
                bans = bans (2 + rand 3) } ];
          protection = rand 2 = 0 }
    | 4 ->
        (* SplitBA: one SplitBA bus per subsystem, equal PE halves. *)
        let per_ss = 1 + rand 2 in
        let ss () =
          { buses = [ bus Splitba ]; bans = bans per_ss }
        in
        { subsystems = [ ss (); ss () ]; protection = rand 2 = 0 }
    | _ ->
        (* Deliberately broken trees (~1 in 6), so downstream
           generation-error handling stays exercised. *)
        let base =
          { subsystems =
              [ { buses = [ bus Gbaviii ]; bans = bans (1 + rand 2) } ];
            protection = false }
        in
        (match rand 4 with
        | 0 ->
            (* Bi-FIFO depth on a bus type that takes none. *)
            { base with
              subsystems =
                [ { buses = [ bus ~depth Gbaviii ]; bans = bans 2 } ] }
        | 1 -> { base with subsystems = [ { buses = []; bans = bans 2 } ] }
        | 2 ->
            (* Memory wider than every bus. *)
            { base with
              subsystems =
                [ { buses = [ bus Gbaviii ];
                    bans =
                      [ { cpu = Some Cpu_mpc755;
                          non_cpu = None;
                          memories =
                            [ { mem_type = Mem_sram;
                                mem_addr_width = 8;
                                mem_data_width = data_width * 4;
                              } ] } ] } ] }
        | _ ->
            (* A bus pair no architecture implements. *)
            { base with
              subsystems =
                [ { buses = [ bus Gbavi; bus ~depth Bfba ]; bans = bans 2 } ]
            })
  in
  t
