module P = Busgen_sim.Program
module Machine = Busgen_sim.Machine
module G = Bussyn.Generate

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

module Codec = struct
  type frame = int array

  let frame_width = 16
  let frame_pixels = frame_width * frame_width
  let blocks_per_frame = 4 (* four 8x8 luma blocks *)

  (* Instrumentation. *)
  let ops_idct = ref 0
  let bits_read = ref 0
  let ops_dq = ref 0
  let ops_mc = ref 0
  let frames_decoded = ref 0

  let reset_counts () =
    ops_idct := 0;
    bits_read := 0;
    ops_dq := 0;
    ops_mc := 0;
    frames_decoded := 0

  let synthetic_video ~frames =
    List.init frames (fun f ->
        Array.init frame_pixels (fun i ->
            let x = i mod frame_width and y = i / frame_width in
            let base = (x * 8) + (y * 4) in
            (* A moving bright block on the gradient. *)
            let bx = (f * 2) mod (frame_width - 4)
            and by = f mod (frame_width - 4) in
            let boost =
              if x >= bx && x < bx + 4 && y >= by && y < by + 4 then 96 else 0
            in
            min 255 (base + boost)))

  (* 8-point 1-D DCT-II / inverse, naive (the instrumented cost model
     counts its multiply-accumulates). *)
  let pi = 4.0 *. atan 1.0

  let cosine = Array.init 8 (fun u -> Array.init 8 (fun x ->
      cos ((2.0 *. float_of_int x +. 1.0) *. float_of_int u *. pi /. 16.0)))

  let dct1 line =
    Array.init 8 (fun u ->
        let cu = if u = 0 then 1.0 /. sqrt 2.0 else 1.0 in
        let s = ref 0.0 in
        for x = 0 to 7 do
          s := !s +. (line.(x) *. cosine.(u).(x))
        done;
        0.5 *. cu *. !s)

  let idct1 line =
    Array.init 8 (fun x ->
        let s = ref 0.0 in
        for u = 0 to 7 do
          incr ops_idct;
          let cu = if u = 0 then 1.0 /. sqrt 2.0 else 1.0 in
          s := !s +. (0.5 *. cu *. line.(u) *. cosine.(u).(x))
        done;
        !s)

  let transpose m =
    Array.init 8 (fun i -> Array.init 8 (fun j -> m.(j).(i)))

  let dct2 block = transpose (Array.map dct1 (transpose (Array.map dct1 block)))
  let idct2 block = transpose (Array.map idct1 (transpose (Array.map idct1 block)))

  (* Quantizer weight grows with frequency, MPEG-style. *)
  let quant_weight u v = 8 + (2 * (u + v))

  let zigzag =
    (* Standard 8x8 zig-zag order, generated. *)
    let order = Array.make 64 (0, 0) in
    let i = ref 0 in
    for s = 0 to 14 do
      let coords =
        List.filter
          (fun (u, v) -> u + v = s && u < 8 && v < 8)
          (List.concat_map
             (fun u -> List.map (fun v -> (u, v)) (List.init 8 (fun v -> v)))
             (List.init 8 (fun u -> u)))
      in
      let coords = if s mod 2 = 0 then List.rev coords else coords in
      List.iter
        (fun c ->
          order.(!i) <- c;
          incr i)
        coords
    done;
    order

  (* Extract 8x8 block [b] (0..3) of a 16x16 frame as floats. *)
  let block_of_frame frame b =
    let ox = (b mod 2) * 8 and oy = b / 2 * 8 in
    Array.init 8 (fun y ->
        Array.init 8 (fun x ->
            float_of_int frame.(((oy + y) * frame_width) + ox + x)))

  let blit_block frame b block =
    let ox = (b mod 2) * 8 and oy = b / 2 * 8 in
    for y = 0 to 7 do
      for x = 0 to 7 do
        frame.(((oy + y) * frame_width) + ox + x) <- block.(y).(x)
      done
    done

  let clamp v = if v < 0 then 0 else if v > 255 then 255 else v

  let encode_block bs block =
    let coefs = dct2 block in
    let q =
      Array.init 64 (fun k ->
          let u, v = zigzag.(k) in
          let w = float_of_int (quant_weight u v) in
          int_of_float (Float.round (coefs.(u).(v) /. w)))
    in
    (* (run, level) pairs: run:6 bits, sign:1, magnitude:9; EOB = run 63. *)
    let run = ref 0 in
    Array.iter
      (fun level ->
        if level = 0 then incr run
        else begin
          Bits_stream.put bs ~bits:6 !run;
          Bits_stream.put bs ~bits:1 (if level < 0 then 1 else 0);
          Bits_stream.put bs ~bits:9 (min 511 (abs level));
          run := 0
        end)
      q;
    Bits_stream.put bs ~bits:6 63

  let decode_block r =
    let q = Array.make 64 0 in
    let pos = ref 0 in
    let rec go () =
      let run = Bits_stream.get r ~bits:6 in
      bits_read := !bits_read + 6;
      if run <> 63 then begin
        let sign = Bits_stream.get r ~bits:1 in
        let mag = Bits_stream.get r ~bits:9 in
        bits_read := !bits_read + 10;
        pos := !pos + run;
        if !pos < 64 then q.(!pos) <- (if sign = 1 then -mag else mag);
        incr pos;
        go ()
      end
    in
    go ();
    let coefs = Array.make_matrix 8 8 0.0 in
    Array.iteri
      (fun k (u, v) ->
        incr ops_dq;
        coefs.(u).(v) <- float_of_int (q.(k) * quant_weight u v))
      zigzag;
    idct2 coefs

  let encode_frame bs ~intra ~reference frame =
    Bits_stream.put bs ~bits:1 (if intra then 1 else 0);
    for b = 0 to blocks_per_frame - 1 do
      let target = block_of_frame frame b in
      let source =
        if intra then Array.map (Array.map (fun p -> p -. 128.0)) target
        else
          let rb = block_of_frame (Option.get reference) b in
          Array.init 8 (fun y ->
              Array.init 8 (fun x -> target.(y).(x) -. rb.(y).(x)))
      in
      encode_block bs source
    done

  let decode_frame r ~reference =
    incr frames_decoded;
    let intra = Bits_stream.get r ~bits:1 = 1 in
    bits_read := !bits_read + 1;
    let frame = Array.make frame_pixels 0 in
    for b = 0 to blocks_per_frame - 1 do
      let block = decode_block r in
      let out =
        if intra then
          Array.map (Array.map (fun p -> clamp (int_of_float (Float.round (p +. 128.0))))) block
        else begin
          let rb = block_of_frame (Option.get reference) b in
          Array.init 8 (fun y ->
              Array.init 8 (fun x ->
                  incr ops_mc;
                  clamp (int_of_float (Float.round (block.(y).(x) +. rb.(y).(x))))))
        end
      in
      blit_block frame b out
    done;
    frame

  let encode frames =
    if List.length frames mod 2 <> 0 then
      invalid_arg "Mpeg2.encode: GOPs hold I+P frame pairs";
    let bs = Bits_stream.create () in
    Bits_stream.put bs ~bits:8 0xB3; (* sequence header magic *)
    Bits_stream.put bs ~bits:8 (List.length frames / 2);
    let rec gops = function
      | [] -> ()
      | i_frame :: p_frame :: rest ->
          Bits_stream.put bs ~bits:8 0xB8; (* GOP header *)
          encode_frame bs ~intra:true ~reference:None i_frame;
          (* The reference for P is the DECODED I frame, as a real
             encoder reconstructs. *)
          let tmp = Bits_stream.create () in
          encode_frame tmp ~intra:true ~reference:None i_frame;
          let r = Bits_stream.reader tmp in
          let recon = decode_frame r ~reference:None in
          encode_frame bs ~intra:false ~reference:(Some recon) p_frame;
          gops rest
      | [ _ ] -> assert false
    in
    gops frames;
    bs

  let decode bs =
    let r = Bits_stream.reader bs in
    let magic = Bits_stream.get r ~bits:8 in
    if magic <> 0xB3 then invalid_arg "Mpeg2.decode: bad sequence header";
    let n_gops = Bits_stream.get r ~bits:8 in
    bits_read := !bits_read + 16;
    List.concat
      (List.init n_gops (fun _ ->
           let gop_hdr = Bits_stream.get r ~bits:8 in
           bits_read := !bits_read + 8;
           if gop_hdr <> 0xB8 then invalid_arg "Mpeg2.decode: bad GOP header";
           let i_frame = decode_frame r ~reference:None in
           let p_frame = decode_frame r ~reference:(Some i_frame) in
           [ i_frame; p_frame ]))

  let psnr a b =
    let mse = ref 0.0 in
    Array.iteri
      (fun i pa ->
        let d = float_of_int (pa - b.(i)) in
        mse := !mse +. (d *. d))
      a;
    let mse = !mse /. float_of_int (Array.length a) in
    if mse = 0.0 then infinity else 10.0 *. log10 (255.0 *. 255.0 /. mse)

  (* Per-operation weights plus a per-frame syntax/driver overhead,
     calibrated to the MSSG reference decoder's per-frame cost the paper
     measured on the MPC755 (Table III implies roughly 0.7M bus cycles
     per 16x16 frame, dominated by fixed parsing/driver work at this
     tiny picture size). *)
  let c_idct = 24
  let c_vld_bit = 30
  let c_dq = 12
  let c_mc = 16
  let c_frame_syntax = 560_000

  let default_gops = 8

  let cost_cache = ref None

  let gop_cycles () =
    match !cost_cache with
    | Some c -> c
    | None ->
        reset_counts ();
        let video = synthetic_video ~frames:(2 * default_gops) in
        let bs = encode video in
        reset_counts ();
        let _ = decode bs in
        let total =
          (!ops_idct * c_idct) + (!bits_read * c_vld_bit) + (!ops_dq * c_dq)
          + (!ops_mc * c_mc)
          + (!frames_decoded * c_frame_syntax)
        in
        let per_gop = total * 2 / !frames_decoded in
        cost_cache := Some per_gop;
        per_gop

  let gop_stream_words =
    let video = synthetic_video ~frames:(2 * default_gops) in
    let bs = encode video in
    let bits = Bits_stream.length_bits bs in
    ((bits / default_gops) + 63) / 64

  let frame_words = frame_pixels * 8 / 64 (* 8bpp pixels on a 64-bit bus *)

  let bits_per_gop = 2 * frame_pixels * 8
end

(* ------------------------------------------------------------------ *)
(* FPA mapping (paper Fig. 27b)                                        *)
(* ------------------------------------------------------------------ *)

let supported = function
  | G.Bfba | G.Gbavi | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ccba | G.Ggba
  | G.Splitba ->
      true

(* Decode compute is split into pieces so relaying BANs can service
   their inbound FIFOs between pieces (the paper's interrupt handler). *)
let pieces = 4

let decode_pieces () =
  let c = Codec.gop_cycles () in
  List.init pieces (fun i ->
      (* Distribute the remainder over the first pieces. *)
      (c / pieces) + (if i < c mod pieces then 1 else 0))

let io_cost = Codec.gop_stream_words * 2

(* Shared-memory distribution (GBAVIII / Hybrid / CCBA / GGBA /
   SplitBA): PE0 feeds GOPs through the global memory; workers deliver
   decoded frames to the last PE for output. *)
let shared_programs arch ~n_pes ~gops =
  let last = n_pes - 1 in
  let home pe =
    match arch with
    | G.Splitba -> if pe < n_pes / 2 then 0 else 1
    | G.Bfba | G.Gbavi | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ggba | G.Ccba ->
        0
  in
  let rdy w = Printf.sprintf "mrdy_%d#%d" w (home w) in
  let ack w = Printf.sprintf "mack_%d#%d" w (home w) in
  let out g = Printf.sprintf "mout_%d#0" g in
  let deliver pe g =
    (* Hand both decoded frames of GOP g to the output BAN.  Hybrid
       sends from the adjacent BAN over the Bi-FIFO (its advantage in
       Table III); everything else goes through the global memory. *)
    if pe = last then [ P.Compute (2 * Codec.frame_words) ]
    else
      match arch with
      | G.Hybrid when pe = last - 1 ->
          fst (Comm.transfer arch ~src:pe ~dst:last ~tag:"fr"
                 (2 * Codec.frame_words))
      | _ ->
          [
            P.Write (P.Loc_global, 2 * Codec.frame_words);
            P.Set_flag (P.Var_flag (out g), true);
          ]
  in
  let collect pe g =
    (* The output BAN consumes GOP g's frames in display order. *)
    if pe <> last then []
    else if g mod n_pes = last then []
    else
      match arch with
      | G.Hybrid when g mod n_pes = last - 1 ->
          snd (Comm.transfer arch ~src:(last - 1) ~dst:last ~tag:"fr"
                 (2 * Codec.frame_words))
          @ [ P.Compute (2 * Codec.frame_words) ]
      | _ ->
          [
            P.Wait_flag (P.Var_flag (out g), true);
            P.Set_flag (P.Var_flag (out g), false);
            P.Read (P.Loc_global, 2 * Codec.frame_words);
            P.Compute (2 * Codec.frame_words);
          ]
  in
  Array.init n_pes (fun pe ->
      let ops = ref [] in
      let emit l = ops := !ops @ l in
      emit (Comm.fifo_setup arch ~pe);
      (* Distribution (PE0 only), double-buffered per worker. *)
      if pe = 0 then begin
        let first = Hashtbl.create 8 in
        List.iter
          (fun g ->
            let w = g mod n_pes in
            if w <> 0 then begin
              match arch with
              | G.Hybrid when w = 1 ->
                  (* The adjacent worker is fed over the Bi-FIFO, off the
                     global bus — part of the Hybrid's advantage. *)
                  emit [ P.Compute io_cost ];
                  emit (fst (Comm.transfer arch ~src:0 ~dst:1 ~tag:"raw"
                               Codec.gop_stream_words))
              | _ ->
                  if Hashtbl.mem first w then
                    emit
                      [
                        P.Wait_flag (P.Var_flag (ack w), true);
                        P.Set_flag (P.Var_flag (ack w), false);
                      ]
                  else Hashtbl.add first w ();
                  emit
                    [
                      P.Compute io_cost;
                      P.Write (P.Loc_global, Codec.gop_stream_words);
                      P.Set_flag (P.Var_flag (rdy w), true);
                    ]
            end)
          (List.init gops (fun g -> g))
      end;
      (* Decode own share; the output BAN first fetches its own raw
         data each round (so the distributor is never blocked on it),
         then collects the round's frames in display order. *)
      let rounds = (gops + n_pes - 1) / n_pes in
      let fetch_raw _g =
        if pe = 0 then [ P.Compute io_cost ]
        else
          match arch with
          | G.Hybrid when pe = 1 ->
              snd (Comm.transfer arch ~src:0 ~dst:1 ~tag:"raw"
                     Codec.gop_stream_words)
          | _ ->
              [
                P.Wait_flag (P.Var_flag (rdy pe), true);
                P.Set_flag (P.Var_flag (rdy pe), false);
                P.Read (P.Loc_global, Codec.gop_stream_words);
                P.Set_flag (P.Var_flag (ack pe), true);
              ]
      in
      let decode_own g =
        List.map (fun c -> P.Compute c) (decode_pieces ())
        @ [
            P.Write (P.Loc_local, Codec.frame_words);
            P.Read (P.Loc_local, Codec.frame_words);
          ]
        @ deliver pe g
        @ [ P.Mark "gop" ]
      in
      for r = 0 to rounds - 1 do
        let own = (r * n_pes) + pe in
        if own < gops then begin
          emit (fetch_raw own);
          (* Decode first; the output BAN then gathers the others'
             frames and emits the round in display order (its own GOP is
             last in the round anyway). *)
          emit (decode_own own);
          if pe = last then
            List.iter
              (fun w ->
                let g = (r * n_pes) + w in
                if g < gops then emit (collect pe g))
              (List.init (n_pes - 1) (fun w -> w))
        end
      done;
      emit [ P.Halt ];
      P.of_list !ops)

(* Relay distribution (BFBA / GBAVI): the stream and the decoded frames
   hop from BAN to BAN (the paper: "the data to be processed in each BAN
   has to be passed from BAN A to each BAN sequentially").  Relaying
   BANs service their inbound link between decode pieces — the Bi-FIFO
   interrupt handler / polling loop of the paper — so downstream BANs
   start each round one piece later per hop instead of a full decode. *)
let relay_programs arch ~n_pes ~gops =
  if n_pes <> 4 then
    invalid_arg "Mpeg2: the relay mapping is defined for four BANs";
  if gops mod n_pes <> 0 then
    invalid_arg "Mpeg2: relay mapping needs a whole number of rounds";
  let rounds = gops / n_pes in
  let raw_w = Codec.gop_stream_words in
  let fr_w = 2 * Codec.frame_words in
  let send ~src ~dst words = fst (Comm.transfer arch ~src ~dst ~tag:"r" words) in
  let recv ~src ~dst words = snd (Comm.transfer arch ~src ~dst ~tag:"r" words) in
  let store_ref =
    [ P.Write (P.Loc_local, Codec.frame_words);
      P.Read (P.Loc_local, Codec.frame_words) ]
  in
  Array.init n_pes (fun pe ->
      let ops = ref [] in
      let emit l = ops := !ops @ l in
      emit (Comm.fifo_setup arch ~pe);
      for _r = 0 to rounds - 1 do
        (match pe with
        | 0 ->
            (* BAN A: read and forward the three raw GOPs of the round,
               then decode its own, then send its decoded frames. *)
            for _j = 1 to 3 do
              emit [ P.Compute io_cost ];
              emit (send ~src:0 ~dst:1 raw_w)
            done;
            emit [ P.Compute io_cost ];
            List.iter (fun c -> emit [ P.Compute c ]) (decode_pieces ());
            emit store_ref;
            emit (send ~src:0 ~dst:1 fr_w)
        | 1 ->
            emit (recv ~src:0 ~dst:1 raw_w);
            List.iteri
              (fun i c ->
                emit [ P.Compute c ];
                (* Service the link between pieces: forward the later
                   BANs' raw data one hop. *)
                if i = 0 || i = 1 then begin
                  emit (recv ~src:0 ~dst:1 raw_w);
                  emit (send ~src:1 ~dst:2 raw_w)
                end)
              (decode_pieces ());
            emit store_ref;
            (* Relay BAN A's decoded frames, then send our own. *)
            emit (recv ~src:0 ~dst:1 fr_w);
            emit (send ~src:1 ~dst:2 fr_w);
            emit (send ~src:1 ~dst:2 fr_w)
        | 2 ->
            emit (recv ~src:1 ~dst:2 raw_w);
            List.iteri
              (fun i c ->
                emit [ P.Compute c ];
                if i = 0 then begin
                  emit (recv ~src:1 ~dst:2 raw_w);
                  emit (send ~src:2 ~dst:3 raw_w)
                end)
              (decode_pieces ());
            emit store_ref;
            emit (recv ~src:1 ~dst:2 fr_w);
            emit (send ~src:2 ~dst:3 fr_w);
            emit (recv ~src:1 ~dst:2 fr_w);
            emit (send ~src:2 ~dst:3 fr_w);
            emit (send ~src:2 ~dst:3 fr_w)
        | _ ->
            (* BAN D: decode its own GOP, collect everyone's frames and
               output the round in display order. *)
            emit (recv ~src:2 ~dst:3 raw_w);
            List.iter (fun c -> emit [ P.Compute c ]) (decode_pieces ());
            emit store_ref;
            emit (recv ~src:2 ~dst:3 fr_w);
            emit (recv ~src:2 ~dst:3 fr_w);
            emit (recv ~src:2 ~dst:3 fr_w);
            emit [ P.Compute (n_pes * fr_w); P.Mark "gop" ])
      done;
      emit [ P.Halt ];
      P.of_list !ops)

let programs ~arch ~n_pes ~gops =
  if not (supported arch) then
    invalid_arg
      (Printf.sprintf "Mpeg2: %s is not supported" (G.arch_name arch));
  match arch with
  | G.Bfba | G.Gbavi -> relay_programs arch ~n_pes ~gops
  | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ccba | G.Ggba | G.Splitba ->
      shared_programs arch ~n_pes ~gops

type result = {
  stats : Machine.stats;
  gops : int;
  throughput_mbps : float;
}

let var_home name =
  match String.index_opt name '#' with
  | None -> 0
  | Some i ->
      int_of_string (String.sub name (i + 1) (String.length name - i - 1))

let session ?(gops = 8) ?config ?faults ?max_cycles ?(trace = false) arch =
  let n_pes = 4 in
  let config =
    match config with
    | Some c -> c
    | None ->
        let base = Machine.default_config arch ~n_pes in
        (* The MSSG decoder is a large program (8788 lines of C, paper
           Section VI.A.3): its instruction working set misses far more
           than the small OFDM kernel, which is what penalises the
           architectures that fetch code over the shared bus (CCBA's
           5-cycle arbitration, Table III). *)
        let timing =
          { base.Machine.timing with
            Busgen_sim.Timing.miss_rate_num = 1; miss_rate_den = 50 }
        in
        { base with Machine.var_home; timing; trace }
  in
  let config =
    match faults with None -> config | Some _ -> { config with Machine.faults }
  in
  let programs = programs ~arch ~n_pes ~gops in
  let finish stats =
    {
      stats;
      gops;
      throughput_mbps =
        Machine.throughput_mbps
          ~bits:(gops * Codec.bits_per_gop)
          ~cycles:stats.Machine.cycles;
    }
  in
  (Machine.start ?max_cycles config programs, finish)

let run ?gops ?config ?faults ?max_cycles ?trace arch =
  let s, finish = session ?gops ?config ?faults ?max_cycles ?trace arch in
  let rec go () =
    match Machine.advance s ~cycles:max_int with
    | `Done stats -> stats
    | `Running -> go ()
  in
  finish (go ())
