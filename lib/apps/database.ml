module P = Busgen_sim.Program
module Machine = Busgen_sim.Machine
module Kernel = Busgen_rtos.Kernel
module G = Bussyn.Generate

let supported = function
  | G.Gbavii | G.Gbaviii | G.Hybrid | G.Splitba | G.Ggba | G.Ccba -> true
  | G.Bfba | G.Gbavi -> false

(* Workload parameters (calibrated against Table IV's absolute scale:
   word-granular record traffic plus RTOS context switches). *)
let words_per_task = 100 (* one hundred 32-bit word accesses per direction *)
let produce_compute = 300 (* server-side object preparation *)
let process_compute = 3300 (* client-side transaction processing *)
let per_word_compute = 8 (* record lookup between accesses *)
let ctx_switch = 30

let home_of ~arch ~n_pes pe =
  match arch with
  | G.Splitba -> if pe < n_pes / 2 then 0 else 1
  | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ggba | G.Ccba | G.Bfba | G.Gbavi -> 0

(* The PE that runs client k: ten clients per BAN, server on PE 0. *)
let pe_of_client ~n_pes ~clients k = k * n_pes / clients

(* Word-granular traffic: each record access is its own bus transaction
   with a little pointer-chasing computation in between. *)
let word_ops mk n =
  List.concat
    (List.init n (fun _ -> [ P.Compute per_word_compute; mk 1 ]))

(* Two shared objects (Fig. 21 shows several tasks' objects); on
   SplitBA one lives in each subsystem's memory, so each arbiter serves
   only its half of the object traffic. *)
let object_home ~arch obj =
  match arch with
  | G.Splitba -> obj
  | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ggba | G.Ccba | G.Bfba | G.Gbavi -> 0

let object_lock ~arch obj = Printf.sprintf "obj_%d#%d" obj (object_home ~arch obj)

let client_object ~arch ~n_pes ~clients k =
  match arch with
  | G.Splitba -> home_of ~arch ~n_pes (pe_of_client ~n_pes ~clients k)
  | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ggba | G.Ccba | G.Bfba | G.Gbavi ->
      k mod 2

let server_task ~arch ~n_pes =
  (* The server publishes each object's data once, under its lock. *)
  let publish obj =
    let data_loc =
      match arch with
      | G.Splitba -> if obj = 0 then P.Loc_global else P.Loc_peer_mem (n_pes - 1)
      | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ggba | G.Ccba | G.Bfba | G.Gbavi ->
          P.Loc_global
    in
    [ P.Compute produce_compute; P.Lock_acquire (object_lock ~arch obj) ]
    @ word_ops (fun w -> P.Write (data_loc, w)) words_per_task
    @ [ P.Lock_release (object_lock ~arch obj) ]
  in
  Kernel.task ~priority:0 "server" (publish 0 @ publish 1)

let client_task ~arch ~n_pes ~clients k =
  let obj = client_object ~arch ~n_pes ~clients k in
  let body =
    [ P.Lock_acquire (object_lock ~arch obj) ]
    @ word_ops (fun w -> P.Read (P.Loc_global, w)) words_per_task
    @ [ P.Lock_release (object_lock ~arch obj); P.Compute process_compute ]
    @ word_ops (fun w -> P.Write (P.Loc_local, w)) words_per_task
  in
  Kernel.task ~priority:5 (Printf.sprintf "client_%d" k) body

let programs ~arch ~n_pes ~clients =
  if not (supported arch) then
    invalid_arg
      (Printf.sprintf "Database: %s has no shared memory for the RTOS"
         (G.arch_name arch));
  Array.init n_pes (fun pe ->
      let tasks =
        (if pe = 0 then [ server_task ~arch ~n_pes ] else [])
        @ List.filter_map
            (fun k ->
              if pe_of_client ~n_pes ~clients k = pe then
                Some (client_task ~arch ~n_pes ~clients k)
              else None)
            (List.init clients (fun k -> k))
      in
      Kernel.program ~ctx_switch tasks)

type result = {
  stats : Machine.stats;
  execution_time_ns : float;
  tasks : int;
}

let var_home name =
  match String.index_opt name '#' with
  | None -> 0
  | Some i ->
      int_of_string (String.sub name (i + 1) (String.length name - i - 1))

let session ?(clients = 40) ?config ?faults ?max_cycles ?(trace = false) arch =
  let n_pes = 4 in
  let config =
    match config with
    | Some c -> c
    | None ->
        let base = Machine.default_config arch ~n_pes in
        (* Database code and the RTOS have poor cache locality (pointer
           chasing over records); program memory lives in the shared
           memory on every one of these architectures' program images
           except the custom ones' local stores. *)
        let timing =
          { base.Machine.timing with
            Busgen_sim.Timing.miss_rate_num = 1; miss_rate_den = 8 }
        in
        { base with Machine.var_home; timing; trace }
  in
  let config =
    match faults with None -> config | Some _ -> { config with Machine.faults }
  in
  let programs = programs ~arch ~n_pes ~clients in
  let finish stats =
    {
      stats;
      execution_time_ns =
        float_of_int stats.Machine.cycles *. Machine.ns_per_cycle;
      tasks = clients + 1;
    }
  in
  (Machine.start ?max_cycles config programs, finish)

let run ?clients ?config ?faults ?max_cycles ?trace arch =
  let s, finish = session ?clients ?config ?faults ?max_cycles ?trace arch in
  let rec go () =
    match Machine.advance s ~cycles:max_int with
    | `Done stats -> stats
    | `Running -> go ()
  in
  finish (go ())
