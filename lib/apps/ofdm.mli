(** OFDM wireless transmitter (paper Section VI.A.2).

    The signal chain is implemented for real — QPSK symbol mapping, bit
    reversal, radix-2 inverse FFT, normalization and cyclic guard
    insertion over 2048-sample packets with 512-sample guards (paper
    Fig. 24) — and instrumented: operation counts from actually running
    the kernels, scaled by per-operation cycle weights calibrated to the
    paper's MPC755 stage balance, give the compute cost of each function
    group E/F/G/H of paper Table I.

    {!programs} maps the groups onto PEs in the paper's two software
    styles (Fig. 26): pipelined-parallel (PPA — one group per BAN,
    packets streaming through) and functional-parallel (FPA — every BAN
    runs the whole chain on its own packets, raw data distributed from
    PE 0 through the architecture's shared memory). *)

module Kernel : sig
  val data_samples : int
  (** 2048 complex samples per packet. *)

  val guard_samples : int
  (** 512-sample cyclic prefix. *)

  val bits_per_packet : int
  (** QPSK: 2 bits per subcarrier. *)

  val symbol_map : int array -> Complex.t array
  (** QPSK map of [2 * data_samples] bits to [data_samples] symbols.
      @raise Invalid_argument on wrong length. *)

  val bit_reverse_permute : Complex.t array -> Complex.t array
  (** @raise Invalid_argument unless the length is a power of two. *)

  val ifft : Complex.t array -> Complex.t array
  (** Radix-2 decimation-in-time inverse FFT (unscaled); expects
      bit-reversed input order, returns natural order. *)

  val fft : Complex.t array -> Complex.t array
  (** Forward transform (for round-trip testing). *)

  val normalize : Complex.t array -> Complex.t array
  (** Scale by [1/n]. *)

  val add_guard : Complex.t array -> Complex.t array
  (** Prepend the cyclic extension (paper Fig. 24): the last
      [guard_samples] samples copied in front. *)

  val transmit : int array -> Complex.t array
  (** The whole chain on one packet of [bits_per_packet] bits; output
      length [data_samples + guard_samples]. *)

  val remove_guard : Complex.t array -> Complex.t array
  (** Strip the cyclic prefix added by {!add_guard}. *)

  val symbol_demap : Complex.t array -> int array
  (** Hard-decision QPSK slicing, the inverse of {!symbol_map}. *)

  val receive : Complex.t array -> int array
  (** The receiver chain (beyond the paper, which builds the
      transmitter): {!remove_guard}, forward FFT, {!symbol_demap}.  On
      a clean channel, [receive (transmit bits) = bits] — the loopback
      property test that pins the whole pipeline down. *)

  val stage_cycles : unit -> int * int * int * int
  (** Modeled compute cycles of function groups (E, F, G, H) per packet,
      from instrumented kernel runs. *)
end

val function_groups : (string * string * string list) list
(** Paper Table I: (group, BAN, functions).  Functions marked with an
    asterisk run only once at startup and are excluded from throughput,
    as in the paper. *)

type style = Ppa | Fpa

val style_name : style -> string

val supported : Bussyn.Generate.arch -> style -> bool
(** PPA needs the four pipeline groups (4 PEs); FPA needs a shared
    memory for the raw-data distribution — except on BFBA/GBAVI, where
    distribution degrades to neighbour relays, as the paper's Table II
    cases 2/3 imply. *)

val programs :
  ?protocol:Comm.protocol ->
  arch:Bussyn.Generate.arch ->
  style:style ->
  n_pes:int ->
  packets:int ->
  unit ->
  Busgen_sim.Program.t array
(** Build the per-PE programs.  [protocol] selects the handshake
    protocol for PPA stage transfers (default the paper's 2-register
    protocol; see {!Comm.protocol}).
    @raise Invalid_argument if unsupported ([supported] false) or
    [n_pes <> 4] for PPA. *)

type result = {
  stats : Busgen_sim.Machine.stats;
  packets : int;
  throughput_mbps : float;
}

val run :
  ?packets:int ->
  ?config:Busgen_sim.Machine.config ->
  ?faults:Busgen_sim.Machine.fault_config ->
  ?max_cycles:int ->
  ?protocol:Comm.protocol ->
  ?trace:bool ->
  Bussyn.Generate.arch ->
  style ->
  result
(** Simulate (default 8 packets, paper Fig. 24) and report throughput at
    the 100 MHz bus clock.  [faults] enables the bus fault model
    (overrides [config.faults] when both are given). *)

val session :
  ?packets:int ->
  ?config:Busgen_sim.Machine.config ->
  ?faults:Busgen_sim.Machine.fault_config ->
  ?max_cycles:int ->
  ?protocol:Comm.protocol ->
  ?trace:bool ->
  Bussyn.Generate.arch ->
  style ->
  Busgen_sim.Machine.session * (Busgen_sim.Machine.stats -> result)
(** {!run} split open for supervised execution: the un-run engine
    session plus the finisher that turns its final stats into a
    {!result}.  [run a s] = advancing the session to [`Done stats] and
    applying the finisher; a checkpoint supervisor instead advances in
    bounded slices, observing {!Busgen_sim.Machine.progress} between
    them. *)
