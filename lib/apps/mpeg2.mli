(** MPEG2 decoder workload (paper Section VI.A.3).

    A compact but genuine codec over the paper's tiny 16x16 pictures:
    the test stream is synthesized by a real encoder (8x8 DCT,
    quantization, zig-zag run-length coding into a bitstream) and decoded
    by the real inverse pipeline (bit reader, run-length decode,
    dequantization, IDCT, motion-compensated addition for P frames).
    Each GOP holds an I frame and a P frame (paper Fig. 27a).

    Decoding is instrumented; operation counts scaled by per-operation
    weights — plus a per-frame syntax/driver overhead constant calibrated
    to the MSSG reference decoder's behaviour the paper measured — give
    each GOP's compute cost for the simulator.

    The mapping is the paper's functional-parallel operation (Fig. 27b):
    BAN A reads the raw stream and distributes GOPs; every BAN decodes
    its share; decoded frames are handed to BAN D for output.  On
    BFBA/GBAVI the stream and the decoded frames hop BAN-to-BAN (paper:
    "the data ... has to be passed from BAN A to each BAN sequentially"),
    which is what makes those architectures slow in Table III. *)

module Codec : sig
  type frame = int array
  (** 256 pixels (16x16), values 0..255, row-major. *)

  val frame_width : int

  val synthetic_video : frames:int -> frame list
  (** Deterministic test content (gradient plus a moving block). *)

  val encode : frame list -> Bits_stream.t
  (** Encode as GOPs of I+P; frame count must be even.
      @raise Invalid_argument otherwise. *)

  val decode : Bits_stream.t -> frame list
  (** Inverse of {!encode} up to quantization error. *)

  val psnr : frame -> frame -> float
  (** Reconstruction quality in dB (for tests). *)

  val gop_cycles : unit -> int
  (** Modeled decode cost of one GOP on an MPC755, from an instrumented
      decode of the synthetic stream. *)

  val gop_stream_words : int
  (** Encoded GOP size in 64-bit bus words (rounded up). *)

  val frame_words : int
  (** Decoded frame size in bus words. *)

  val bits_per_gop : int
  (** Decoded video bits per GOP (2 frames x 256 px x 8 bpp). *)
end

type result = {
  stats : Busgen_sim.Machine.stats;
  gops : int;
  throughput_mbps : float;
}

val supported : Bussyn.Generate.arch -> bool
(** All but SplitBA/GGBA (the paper evaluates BFBA, GBAVI, GBAVIII,
    Hybrid and CCBA in Table III); we additionally allow GGBA and
    SplitBA for ablations. *)

val programs :
  arch:Bussyn.Generate.arch ->
  n_pes:int ->
  gops:int ->
  Busgen_sim.Program.t array

val run :
  ?gops:int ->
  ?config:Busgen_sim.Machine.config ->
  ?faults:Busgen_sim.Machine.fault_config ->
  ?max_cycles:int ->
  ?trace:bool ->
  Bussyn.Generate.arch ->
  result
(** Default 8 GOPs.  [faults] enables the bus fault model (overrides
    [config.faults] when both are given). *)

val session :
  ?gops:int ->
  ?config:Busgen_sim.Machine.config ->
  ?faults:Busgen_sim.Machine.fault_config ->
  ?max_cycles:int ->
  ?trace:bool ->
  Bussyn.Generate.arch ->
  Busgen_sim.Machine.session * (Busgen_sim.Machine.stats -> result)
(** {!run} split open for supervised execution (see
    {!Ofdm.session}). *)
