(** Database example (paper Section VI.A.1, Fig. 21-22, Table IV).

    Forty-one tasks on the ATALANTA-style RTOS ({!Busgen_rtos.Kernel}):
    one server and ten clients on BAN A, ten clients on each other BAN.
    The server produces each client's object data in shared memory under
    that object's lock; each client locks its object, reads one hundred
    32-bit words (fifty bus words) from shared memory, releases the lock,
    processes, and writes its hundred words back — "each task accesses
    one-hundred data to or from the shared memory".  Accesses are
    word-granular (database record traffic, not DMA bursts), which is
    what makes the example bus-bound: "each one of Bus Systems has
    intensive bus traffic on its bus due to shared memory requests from
    each BAN".

    On SplitBA, each client's object and result live in its own
    subsystem's memory (the server writes across the bridge for the far
    half), so each arbiter sees only half of the requests — the paper's
    stated reason for SplitBA's 41% shorter execution time. *)

type result = {
  stats : Busgen_sim.Machine.stats;
  execution_time_ns : float;
  tasks : int;
}

val supported : Bussyn.Generate.arch -> bool
(** Architectures with a shared memory (the RTOS requires one, paper
    Section VI.C): GBAVIII, Hybrid, SplitBA, GGBA, CCBA. *)

val programs :
  arch:Bussyn.Generate.arch ->
  n_pes:int ->
  clients:int ->
  Busgen_sim.Program.t array
(** One RTOS kernel program per PE; [clients] are spread evenly with
    the server on PE 0. *)

val run :
  ?clients:int ->
  ?config:Busgen_sim.Machine.config ->
  ?faults:Busgen_sim.Machine.fault_config ->
  ?max_cycles:int ->
  ?trace:bool ->
  Bussyn.Generate.arch ->
  result
(** Default 40 clients (41 tasks).  [faults] enables the bus fault
    model (overrides [config.faults] when both are given). *)

val session :
  ?clients:int ->
  ?config:Busgen_sim.Machine.config ->
  ?faults:Busgen_sim.Machine.fault_config ->
  ?max_cycles:int ->
  ?trace:bool ->
  Bussyn.Generate.arch ->
  Busgen_sim.Machine.session * (Busgen_sim.Machine.stats -> result)
(** {!run} split open for supervised execution (see
    {!Ofdm.session}). *)
