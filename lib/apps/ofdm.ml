module P = Busgen_sim.Program
module Machine = Busgen_sim.Machine
module G = Bussyn.Generate

(* ------------------------------------------------------------------ *)
(* Signal-processing kernels (real, instrumented)                      *)
(* ------------------------------------------------------------------ *)

module Kernel = struct
  let data_samples = 2048
  let guard_samples = 512
  let bits_per_packet = 2 * data_samples (* QPSK *)

  (* Instrumentation counters: number of primitive operations actually
     executed by each kernel. *)
  let ops_map = ref 0
  let ops_rev = ref 0
  let ops_bfly = ref 0
  let ops_norm = ref 0
  let ops_guard = ref 0

  let reset_counts () =
    ops_map := 0;
    ops_rev := 0;
    ops_bfly := 0;
    ops_norm := 0;
    ops_guard := 0

  let symbol_map bits =
    if Array.length bits <> bits_per_packet then
      invalid_arg "Ofdm.symbol_map: wrong bit count";
    Array.init data_samples (fun i ->
        incr ops_map;
        let re = if bits.(2 * i) = 0 then 1.0 else -1.0 in
        let im = if bits.((2 * i) + 1) = 0 then 1.0 else -1.0 in
        { Complex.re; im })

  let is_pow2 n = n > 0 && n land (n - 1) = 0

  let bit_reverse_permute x =
    let n = Array.length x in
    if not (is_pow2 n) then
      invalid_arg "Ofdm.bit_reverse_permute: length not a power of two";
    let bits =
      let rec go k = if 1 lsl k = n then k else go (k + 1) in
      go 0
    in
    Array.init n (fun i ->
        incr ops_rev;
        let rec rev acc k i =
          if k = 0 then acc else rev ((acc lsl 1) lor (i land 1)) (k - 1) (i lsr 1)
        in
        x.(rev 0 bits i))

  (* Radix-2 DIT transform on bit-reversed input.  [sign] = +1. for the
     inverse transform, -1. for the forward one. *)
  let transform sign x =
    let n = Array.length x in
    if not (is_pow2 n) then invalid_arg "Ofdm.transform: length not a power of two";
    let a = Array.copy x in
    let m = ref 2 in
    while !m <= n do
      let half = !m / 2 in
      let step = sign *. 2.0 *. Float.pi /. float_of_int !m in
      for k = 0 to (n / !m) - 1 do
        for j = 0 to half - 1 do
          incr ops_bfly;
          let w = { Complex.re = cos (step *. float_of_int j);
                    im = sin (step *. float_of_int j) } in
          let i1 = (k * !m) + j in
          let i2 = i1 + half in
          let t = Complex.mul w a.(i2) in
          let u = a.(i1) in
          a.(i1) <- Complex.add u t;
          a.(i2) <- Complex.sub u t
        done
      done;
      m := !m * 2
    done;
    a

  let ifft x = transform 1.0 x

  let fft x =
    (* Natural-order input: permute first. *)
    transform (-1.0) (bit_reverse_permute x)

  let normalize x =
    let n = float_of_int (Array.length x) in
    Array.map
      (fun c ->
        incr ops_norm;
        { Complex.re = c.Complex.re /. n; im = c.Complex.im /. n })
      x

  let add_guard x =
    let n = Array.length x in
    if n < guard_samples then invalid_arg "Ofdm.add_guard: packet too short";
    Array.init (n + guard_samples) (fun i ->
        incr ops_guard;
        if i < guard_samples then x.(n - guard_samples + i)
        else x.(i - guard_samples))

  let transmit bits =
    let symbols = symbol_map bits in
    let rev = bit_reverse_permute symbols in
    let time = ifft rev in
    let scaled = normalize time in
    add_guard scaled

  let remove_guard x =
    let n = Array.length x in
    if n <= guard_samples then
      invalid_arg "Ofdm.remove_guard: packet too short";
    Array.sub x guard_samples (n - guard_samples)

  let symbol_demap symbols =
    if Array.length symbols <> data_samples then
      invalid_arg "Ofdm.symbol_demap: wrong symbol count";
    let bits = Array.make bits_per_packet 0 in
    Array.iteri
      (fun i c ->
        bits.(2 * i) <- (if c.Complex.re >= 0.0 then 0 else 1);
        bits.((2 * i) + 1) <- (if c.Complex.im >= 0.0 then 0 else 1))
      symbols;
    bits

  let receive samples =
    (* The inverse chain: strip the cyclic prefix, forward transform
       back to subcarriers (transmit already folded in the 1/N), and
       slice each QPSK symbol to bits. *)
    let time = remove_guard samples in
    let symbols = fft time in
    symbol_demap symbols

  (* Per-operation cycle weights.  Calibrated so the four function
     groups of paper Table I carry the MPC755 stage balance the paper
     reports: the IFFT (group F) is the heaviest pipeline stage and is
     roughly 40-45% of a packet's total work, which reproduces the
     paper's FPA-over-PPA advantage (Table II observation A). *)
  let c_datagen = 45 (* data generation + QPSK mapping, per sample *)
  let c_rev = 4
  let c_bfly = 13
  let c_norm = 16
  let c_guard = 16
  let c_output = 20 (* data output, per transmitted sample *)

  let stage_cycles () =
    reset_counts ();
    let bits = Array.init bits_per_packet (fun i -> (i * 7 / 3) land 1) in
    let out = transmit bits in
    let e = (!ops_map * c_datagen) + (!ops_rev * c_rev) in
    let f = !ops_bfly * c_bfly in
    let g = !ops_norm * c_norm in
    let h = (!ops_guard * c_guard / 4) + (Array.length out * c_output) in
    (e, f, g, h)
end

(* ------------------------------------------------------------------ *)
(* Program construction                                                *)
(* ------------------------------------------------------------------ *)

let function_groups =
  [
    ( "E", "BAN A",
      [ "Initialization (channel parameters, etc)*";
        "Train Pulse Generation*"; "Symbol Generation*";
        "Data Generation and Symbol Mapping"; "Bit Reverse for Inverse FFT" ] );
    ("F", "BAN B", [ "Inverse FFT" ]);
    ("G", "BAN C", [ "Normalizing Inverse FFT" ]);
    ( "H", "BAN D",
      [ "Normalization"; "Insertion of Guard Signal"; "Data Output" ] );
  ]

type style = Ppa | Fpa

let style_name = function Ppa -> "PPA" | Fpa -> "FPA"

let packet_words = Kernel.data_samples + Kernel.guard_samples
(* One 64-bit bus word per complex sample (two packed 32-bit floats). *)

let chunk = Comm.chunk

let transfer ?protocol arch ~src ~dst words =
  Comm.transfer ?protocol arch ~src ~dst ~tag:"s" words

let supported arch style =
  match (arch, style) with
  | G.Splitba, Ppa -> false (* paper Table II: SplitBA runs FPA only *)
  | ( ( G.Bfba | G.Gbavi | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ggba | G.Ccba
      | G.Splitba ),
      (Ppa | Fpa) ) ->
      true

(* Stage compute costs. *)
let stages = lazy (Kernel.stage_cycles ())

let stage_cost k =
  let e, f, g, h = Lazy.force stages in
  match k with 0 -> e | 1 -> f | 2 -> g | 3 -> h | _ -> assert false

let total_cost () =
  let e, f, g, h = Lazy.force stages in
  e + f + g + h

let ppa_programs ?protocol arch ~n_pes ~packets =
  if n_pes <> 4 then
    invalid_arg "Ofdm: PPA maps the four function groups onto four PEs";
  Array.init n_pes (fun k ->
      let recv_ops =
        if k = 0 then []
        else snd (transfer ?protocol arch ~src:(k - 1) ~dst:k packet_words)
      in
      let send_ops =
        if k = n_pes - 1 then []
        else fst (transfer ?protocol arch ~src:k ~dst:(k + 1) packet_words)
      in
      let mark = if k = n_pes - 1 then [ P.Mark "packet" ] else [] in
      let body _ = recv_ops @ [ P.Compute (stage_cost k) ] @ send_ops @ mark in
      let setup =
        (* Program the inbound Bi-FIFO threshold (paper Example 4). *)
        match arch with
        | (G.Bfba | G.Hybrid) when k > 0 ->
            [ P.Fifo_set_threshold (k, chunk) ]
        | G.Bfba | G.Hybrid | G.Gbavi | G.Gbavii | G.Gbaviii | G.Splitba
        | G.Ggba | G.Ccba ->
            []
      in
      P.concat
        [ P.of_list setup; P.repeat packets body; P.of_list [ P.Halt ] ])

(* -------------------- FPA: whole chain per BAN --------------------- *)

let io_cost = packet_words (* reading the raw packet from the source *)

(* Shared-memory FPA (GBAVIII, Hybrid, GGBA, CCBA, SplitBA): a
   distributor PE feeds raw packets to its workers through the shared
   memory; every PE runs the full chain on its own packets (paper
   Example 5 / Fig. 26b). *)
let fpa_shared_programs arch ~n_pes ~packets =
  let home pe =
    match arch with
    | G.Splitba -> if pe < n_pes / 2 then 0 else 1
    | G.Bfba | G.Gbavi | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ggba | G.Ccba ->
        0
  in
  let distributor_of pe =
    match arch with
    | G.Splitba -> if pe < n_pes / 2 then 0 else n_pes / 2
    | G.Bfba | G.Gbavi | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ggba | G.Ccba ->
        0
  in
  let rdy w = Printf.sprintf "rdy_%d#%d" w (home w) in
  let ack w = Printf.sprintf "ack_%d#%d" w (home w) in
  let packet_list pe =
    (* Round-robin packet assignment. *)
    List.filter (fun p -> p mod n_pes = pe) (List.init packets (fun p -> p))
  in
  let full_chain = [ P.Compute (total_cost ()) ] in
  Array.init n_pes (fun pe ->
      let is_distributor = distributor_of pe = pe in
      let my_packets = packet_list pe in
      let worker_loop =
        List.concat_map
          (fun _p ->
            if is_distributor then
              (* Own packet: read the source and process directly. *)
              [ P.Compute io_cost ] @ full_chain
              @ [ P.Write (P.Loc_global, packet_words) ]
            else
              [
                P.Wait_flag (P.Var_flag (rdy pe), true);
                P.Set_flag (P.Var_flag (rdy pe), false);
                P.Read (P.Loc_global, packet_words);
                P.Set_flag (P.Var_flag (ack pe), true);
              ]
              @ full_chain
              @ [ P.Write (P.Loc_global, packet_words) ])
          my_packets
      in
      let distribution =
        if not is_distributor then []
        else begin
          (* Feed every other worker this distributor serves.  Each
             worker has one raw buffer; the first fill needs no wait,
             refills wait for the worker's consumption ack, so
             distribution of round r+1 overlaps the workers' round-r
             computation. *)
          let first = Hashtbl.create 8 in
          List.concat_map
            (fun p ->
              let w = p mod n_pes in
              if w = pe || distributor_of w <> pe then []
              else
                let refill =
                  if Hashtbl.mem first w then
                    [
                      P.Wait_flag (P.Var_flag (ack w), true);
                      P.Set_flag (P.Var_flag (ack w), false);
                    ]
                  else begin
                    Hashtbl.add first w ();
                    []
                  end
                in
                refill
                @ [
                    P.Compute io_cost;
                    P.Write (P.Loc_global, packet_words);
                    P.Set_flag (P.Var_flag (rdy w), true);
                  ])
            (List.init packets (fun p -> p))
        end
      in
      P.concat
        [ P.of_list distribution; P.of_list worker_loop; P.of_list [ P.Halt ] ])

(* Relay FPA (BFBA / GBAVI): raw packets hop BAN to BAN (paper
   Section IV.C.2: non-adjacent PEs relay sequentially). *)
let fpa_relay_programs arch ~n_pes ~packets =
  let full_chain = [ P.Compute (total_cost ()) ] in
  Array.init n_pes (fun pe ->
      let ops = ref [] in
      let emit l = ops := !ops @ l in
      if (match arch with G.Bfba | G.Hybrid -> pe > 0 | _ -> false) then
        emit [ P.Fifo_set_threshold (pe, chunk) ];
      List.iter
        (fun p ->
          let w = p mod n_pes in
          if pe = 0 then begin
            if w = 0 then emit ([ P.Compute io_cost ] @ full_chain)
            else begin
              emit [ P.Compute io_cost ];
              emit (fst (transfer arch ~src:0 ~dst:1 packet_words))
            end
          end
          else if pe <= w then begin
            (* Receive the packet from upstream... *)
            emit (snd (transfer arch ~src:(pe - 1) ~dst:pe packet_words));
            if pe = w then emit full_chain
            else
              (* ...and relay it downstream. *)
              emit (fst (transfer arch ~src:pe ~dst:(pe + 1) packet_words))
          end)
        (List.init packets (fun p -> p));
      emit [ P.Halt ];
      P.of_list !ops)

let programs ?protocol ~arch ~style ~n_pes ~packets () =
  if not (supported arch style) then
    invalid_arg
      (Printf.sprintf "Ofdm: %s does not support %s" (G.arch_name arch)
         (style_name style));
  match style with
  | Ppa -> ppa_programs ?protocol arch ~n_pes ~packets
  | Fpa -> (
      match arch with
      | G.Bfba | G.Gbavi -> fpa_relay_programs arch ~n_pes ~packets
      | G.Gbavii | G.Gbaviii | G.Hybrid | G.Ggba | G.Ccba | G.Splitba ->
          fpa_shared_programs arch ~n_pes ~packets)

type result = {
  stats : Machine.stats;
  packets : int;
  throughput_mbps : float;
}

let var_home name =
  match String.index_opt name '#' with
  | None -> 0
  | Some i ->
      int_of_string (String.sub name (i + 1) (String.length name - i - 1))

let finish ~packets ~style stats =
  let throughput_mbps =
    match style with
    | Fpa ->
        Machine.throughput_mbps
          ~bits:(packets * Kernel.bits_per_packet)
          ~cycles:stats.Machine.cycles
    | Ppa -> (
        (* Steady-state rate between successive packet completions at
           the last pipeline stage: the paper excludes one-time startup
           from its throughput (Section VI.A.2), which for a pipeline
           means excluding the fill. *)
        match
          List.filter_map
            (fun (l, t) -> if l = "packet" then Some t else None)
            stats.Machine.marks
        with
        | t0 :: (_ :: _ as rest) ->
            let tn = List.nth rest (List.length rest - 1) in
            Machine.throughput_mbps
              ~bits:(List.length rest * Kernel.bits_per_packet)
              ~cycles:(tn - t0)
        | [ _ ] | [] ->
            Machine.throughput_mbps
              ~bits:(packets * Kernel.bits_per_packet)
              ~cycles:stats.Machine.cycles)
  in
  { stats; packets; throughput_mbps }

let session ?(packets = 8) ?config ?faults ?max_cycles ?protocol
    ?(trace = false) arch style =
  let n_pes = 4 in
  let config =
    match config with
    | Some c -> c
    | None ->
        { (Machine.default_config arch ~n_pes) with Machine.var_home;
          trace }
  in
  let config =
    match faults with None -> config | Some _ -> { config with Machine.faults }
  in
  let programs = programs ?protocol ~arch ~style ~n_pes ~packets () in
  (Machine.start ?max_cycles config programs, finish ~packets ~style)

let run ?packets ?config ?faults ?max_cycles ?protocol ?trace arch style =
  let s, finish =
    session ?packets ?config ?faults ?max_cycles ?protocol ?trace arch style
  in
  let rec go () =
    match Machine.advance s ~cycles:max_int with
    | `Done stats -> stats
    | `Running -> go ()
  in
  finish (go ())
