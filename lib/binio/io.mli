(** Binary serialization primitives.

    A tiny, dependency-free length-prefixed format: integers are 8
    little-endian bytes, strings and sequences carry their length.
    Readers never trust the input — every decode is bounds-checked and
    a malformed buffer raises {!Corrupt} with a position, which callers
    turn into a clean [Error].  No OCaml [Marshal] anywhere: the bytes
    must be stable across compiler versions and diagnosable with [xxd].

    This is the bottom layer shared by checkpoint files
    ([Busgen_ckpt.Io] re-exports it, adding the [Bits] codecs) and the
    process-pool wire protocol ([Busgen_par.Procpool]). *)

type writer

val writer : unit -> writer
val contents : writer -> string

val w_int : writer -> int -> unit
(** Any OCaml [int] (63-bit, sign included). *)

val w_bool : writer -> bool -> unit
val w_string : writer -> string -> unit

val w_raw : writer -> string -> unit
(** Bytes with no length prefix (magic numbers). *)

val w_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val w_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val w_opt : writer -> (writer -> 'a -> unit) -> 'a option -> unit

exception Corrupt of string
(** Raised by every [r_*] function on truncated or malformed input; the
    message names the failing decode and byte position. *)

type reader

val reader : string -> reader

val corrupt : reader -> string -> 'a
(** [corrupt r what] raises {!Corrupt} naming [what] and the current
    byte position — for higher-level decoders layered on this one. *)

val r_int : reader -> int
val r_bool : reader -> bool
val r_string : reader -> string
val r_list : reader -> (reader -> 'a) -> 'a list
val r_array : reader -> (reader -> 'a) -> 'a array
val r_opt : reader -> (reader -> 'a) -> 'a option

val at_end : reader -> bool

val pos : reader -> int
(** Current byte offset (for error messages in higher-level decoders). *)

val crc32 : string -> int
(** IEEE CRC-32 (the zlib/Ethernet polynomial) of the whole string, in
    [\[0, 2{^32})].  Table-driven; used as the checkpoint content
    checksum and the frame checksum of the process-pool protocol. *)
