(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = Buffer.t

let writer () = Buffer.create 4096
let contents = Buffer.contents

let w_int b v =
  (* 8 little-endian bytes of the two's-complement value: every OCaml
     int round-trips, including negative ones. *)
  let v64 = Int64.of_int v in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical v64 (8 * i)) 0xFFL)))
  done

let w_bool b v = w_int b (if v then 1 else 0)

let w_raw = Buffer.add_string

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_list b f l =
  w_int b (List.length l);
  List.iter (f b) l

let w_array b f a =
  w_int b (Array.length a);
  Array.iter (f b) a

let w_opt b f = function
  | None -> w_bool b false
  | Some v ->
      w_bool b true;
      f b v

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

exception Corrupt of string

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }

let corrupt r what =
  raise (Corrupt (Printf.sprintf "%s at byte %d" what r.pos))

let r_int r =
  if r.pos + 8 > String.length r.src then corrupt r "truncated integer";
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor
        (Int64.shift_left !v 8)
        (Int64.of_int (Char.code r.src.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  (* Values outside the native [int] range cannot have been produced by
     [w_int]; reject them instead of silently wrapping. *)
  if Int64.of_int (Int64.to_int !v) <> !v then corrupt r "integer overflow";
  Int64.to_int !v

let r_bool r =
  match r_int r with
  | 0 -> false
  | 1 -> true
  | _ -> corrupt r "malformed boolean"

let r_string r =
  let n = r_int r in
  if n < 0 || r.pos + n > String.length r.src then corrupt r "truncated string";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_seq r f =
  let n = r_int r in
  if n < 0 || r.pos + n > String.length r.src then
    (* Every element is at least one byte; an n beyond the remaining
       input is corrupt, and checking here bounds allocation. *)
    corrupt r "malformed sequence length";
  (n, f)

(* [List.init] / [Array.init] do not specify their evaluation order,
   and decoding must be strictly sequential. *)
let r_list r f =
  let n, f = r_seq r f in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f r :: acc) in
  go n []

let r_array r f =
  let n, f = r_seq r f in
  if n = 0 then [||]
  else begin
    let a = Array.make n (f r) in
    for i = 1 to n - 1 do
      a.(i) <- f r
    done;
    a
  end

let r_opt r f = if r_bool r then Some (f r) else None

let at_end r = r.pos = String.length r.src
let pos r = r.pos

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3 / zlib polynomial, reflected, table-driven)      *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF
